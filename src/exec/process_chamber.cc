#include "exec/process_chamber.h"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <thread>

#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

using Clock = std::chrono::steady_clock;

// Child -> parent frame: status byte, violation count, then (on success)
// the output vector. Anything malformed or truncated means the child
// misbehaved or died and the parent substitutes the fallback.
constexpr std::uint8_t kOk = 1;
constexpr std::uint8_t kProgramError = 2;
constexpr std::uint8_t kDimensionMismatch = 3;

bool WriteFully(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `len` bytes, honouring an absolute deadline (no deadline
/// when `deadline` is nullopt). Returns false on timeout, EOF, or error.
bool ReadFullyWithDeadline(int fd, void* data, std::size_t len,
                           const std::optional<Clock::time_point>& deadline,
                           bool* timed_out) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    int wait_ms = -1;
    if (deadline) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - Clock::now());
      if (remaining.count() <= 0) {
        *timed_out = true;
        return false;
      }
      wait_ms = static_cast<int>(remaining.count()) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) {
      *timed_out = true;
      return false;
    }
    ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF: child died before finishing the frame
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Runs the program in the child and streams the frame. Must only call
/// _exit (never exit) so the parent's stdio/atexit state is untouched.
[[noreturn]] void ChildMain(int fd, const ProgramFactory& factory,
                            const Dataset& block, std::size_t declared_dims,
                            const ChamberPolicy& policy,
                            const failpoints::Outcome& injected) {
  // The verdict for exec.process_chamber.child was drawn by the PARENT
  // before fork (counter updates made after fork would be lost with the
  // child's address space, breaking every-Nth determinism); the child just
  // enacts it. A crash _exits before any frame byte is written, so the
  // parent observes EOF — indistinguishable from a real SIGSEGV.
  if (injected.fired) {
    if (injected.delay.count() > 0) {
      std::this_thread::sleep_for(injected.delay);
    }
    if (injected.action == failpoints::FireAction::kCrash) {
      ::_exit(9);
    }
    if (injected.action == failpoints::FireAction::kError) {
      std::uint8_t status = kProgramError;
      std::uint64_t violations = 0;
      bool wrote = WriteFully(fd, &status, sizeof(status)) &&
                   WriteFully(fd, &violations, sizeof(violations));
      ::close(fd);
      ::_exit(wrote ? 0 : 1);
    }
  }
  ChamberServices services(policy);
  Result<Row> result = Status::Internal("never ran");
  try {
    std::unique_ptr<AnalysisProgram> program = factory();
    result = program->RunWithServices(block, &services);
  } catch (...) {
    result = Status::PolicyViolation("program threw");
  }
  std::uint8_t status = kOk;
  if (!result.ok()) {
    status = kProgramError;
  } else if (result.value().size() != declared_dims) {
    status = kDimensionMismatch;
  }
  auto violations = static_cast<std::uint64_t>(services.violation_count());
  bool ok = WriteFully(fd, &status, sizeof(status)) &&
            WriteFully(fd, &violations, sizeof(violations));
  if (ok && status == kOk) {
    const Row& out = result.value();
    auto n = static_cast<std::uint64_t>(out.size());
    ok = WriteFully(fd, &n, sizeof(n)) &&
         WriteFully(fd, out.data(), n * sizeof(double));
  }
  ::close(fd);
  ::_exit(ok ? 0 : 1);
}

}  // namespace

Result<ChamberRun> ProcessChamber::Execute(const ProgramFactory& factory,
                                           const Dataset& block,
                                           const Row& fallback) const {
  GUPT_FAILPOINT_STATUS("exec.process_chamber.entry");
  if (!factory) {
    return Status::InvalidArgument("program factory is null");
  }
  std::size_t declared_dims;
  {
    std::unique_ptr<AnalysisProgram> probe = factory();
    if (!probe) {
      return Status::InvalidArgument("program factory returned null");
    }
    declared_dims = probe->output_dims();
  }
  if (declared_dims == 0 || fallback.size() != declared_dims) {
    return Status::InvalidArgument(
        "fallback dimension does not match program output dimension");
  }

  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal("pipe() failed: " +
                            std::string(std::strerror(errno)));
  }

  const auto start = Clock::now();
  std::optional<Clock::time_point> deadline;
  if (policy_.deadline.count() > 0) {
    deadline = start + policy_.deadline;
  }

  // Draw the child's failpoint verdict pre-fork (see ChildMain). The
  // no-sleep EvalDetailed keeps the parent prompt; the child applies the
  // delay where it belongs — against its own deadline.
  failpoints::Outcome injected_child =
      failpoints::EvalDetailed("exec.process_chamber.child");

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::Internal("fork() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    ::close(fds[0]);
    ChildMain(fds[1], factory, block, declared_dims, policy_, injected_child);
  }
  ::close(fds[1]);

  ChamberRun run;
  std::uint8_t status = 0;
  std::uint64_t violations = 0;
  bool timed_out = false;
  bool frame_ok =
      ReadFullyWithDeadline(fds[0], &status, sizeof(status), deadline,
                            &timed_out) &&
      ReadFullyWithDeadline(fds[0], &violations, sizeof(violations), deadline,
                            &timed_out);
  Row output;
  if (frame_ok && status == kOk) {
    std::uint64_t n = 0;
    frame_ok = ReadFullyWithDeadline(fds[0], &n, sizeof(n), deadline,
                                     &timed_out) &&
               n == declared_dims;
    if (frame_ok) {
      output.resize(n);
      frame_ok = ReadFullyWithDeadline(fds[0], output.data(),
                                       n * sizeof(double), deadline,
                                       &timed_out);
    }
  }
  ::close(fds[0]);

  if (timed_out) {
    ::kill(pid, SIGKILL);  // a real kill: the overrunning child is gone
  }
  // wait4 instead of waitpid: the same reap, plus this child's exact
  // rusage — per-block child CPU/RSS that RUSAGE_CHILDREN (cumulative over
  // all reaped children, process-wide) cannot attribute. The exec.rusage
  // failpoint models a failed capture: accounting degrades to zeros while
  // the query result is untouched.
  int wait_status = 0;
  struct rusage child_usage;
  std::memset(&child_usage, 0, sizeof(child_usage));
  bool rusage_ok = true;
  while (::wait4(pid, &wait_status, 0, &child_usage) < 0) {
    if (errno != EINTR) {
      rusage_ok = false;
      break;
    }
  }
  if (failpoints::Eval("exec.rusage") != failpoints::FireAction::kNone) {
    rusage_ok = false;
  }
  if (rusage_ok) {
    run.child_user_cpu_ns =
        static_cast<std::int64_t>(child_usage.ru_utime.tv_sec) *
            1'000'000'000 +
        static_cast<std::int64_t>(child_usage.ru_utime.tv_usec) * 1'000;
    run.child_sys_cpu_ns =
        static_cast<std::int64_t>(child_usage.ru_stime.tv_sec) *
            1'000'000'000 +
        static_cast<std::int64_t>(child_usage.ru_stime.tv_usec) * 1'000;
    run.child_max_rss_kb = child_usage.ru_maxrss;
  }

  run.policy_violations = static_cast<std::size_t>(violations);
  if (timed_out) {
    run.deadline_exceeded = true;
    run.used_fallback = true;
    run.output = fallback;
    run.policy_violations = 0;  // the partial frame is not trustworthy
    run.program_status =
        Status::DeadlineExceeded("block subprocess exceeded cycle budget");
  } else if (!frame_ok) {
    run.used_fallback = true;
    run.output = fallback;
    run.policy_violations = 0;
    run.program_status =
        Status::PolicyViolation("block subprocess crashed or sent a "
                                "malformed frame");
  } else if (status == kOk) {
    run.output = std::move(output);
    run.program_status = Status::OK();
  } else {
    run.used_fallback = true;
    run.output = fallback;
    run.program_status =
        status == kDimensionMismatch
            ? Status::PolicyViolation("subprocess returned wrong arity")
            : Status::NumericalError("subprocess program reported an error");
  }

  if (policy_.pad_to_deadline && deadline) {
    std::this_thread::sleep_until(*deadline);
  }
  run.elapsed = Clock::now() - start;
  return run;
}

}  // namespace gupt
