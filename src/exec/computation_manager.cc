#include "exec/computation_manager.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "exec/process_chamber.h"
#include "obs/prof/profiler.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {

std::vector<Row> BlockExecutionReport::Outputs() const {
  std::vector<Row> outputs;
  outputs.reserve(runs.size());
  for (const ChamberRun& run : runs) outputs.push_back(run.output);
  return outputs;
}

ComputationManager::ComputationManager(ThreadPool* pool, ChamberPolicy policy,
                                       ChamberPool* chamber_pool)
    : pool_(pool), chamber_pool_(chamber_pool), chamber_(std::move(policy)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  block_duration_histogram_ = registry.GetHistogram(
      "gupt_exec_block_duration_seconds",
      "Wall time of one per-block chamber execution (includes padding).",
      obs::Histogram::DurationBuckets());
  blocks_ok_counter_ =
      registry.GetCounter("gupt_exec_blocks_total",
                          "Block executions by outcome.", {{"outcome", "ok"}});
  blocks_fallback_counter_ = registry.GetCounter(
      "gupt_exec_blocks_total", "Block executions by outcome.",
      {{"outcome", "fallback"}});
  deadline_counter_ = registry.GetCounter(
      "gupt_exec_deadline_exceeded_total",
      "Block executions abandoned at the chamber cycle budget.");
  violation_counter_ = registry.GetCounter(
      "gupt_exec_policy_violations_total",
      "MAC policy denials incurred by untrusted programs.");
  child_user_cpu_counter_ = registry.GetCounter(
      "gupt_rusage_child_cpu_seconds_total",
      "CPU consumed by process-chamber children, by mode (wait4 rusage).",
      {{"mode", "user"}});
  child_sys_cpu_counter_ = registry.GetCounter(
      "gupt_rusage_child_cpu_seconds_total",
      "CPU consumed by process-chamber children, by mode (wait4 rusage).",
      {{"mode", "sys"}});
  child_max_rss_gauge_ = registry.GetGauge(
      "gupt_rusage_child_max_rss_bytes",
      "Largest process-chamber child high-water RSS observed so far.");
}

Result<BlockExecutionReport> ComputationManager::ExecuteOnBlocks(
    const ProgramFactory& factory, const Dataset& dataset,
    const BlockPlan& plan, const Row& fallback) const {
  if (plan.blocks.empty()) {
    return Status::InvalidArgument("block plan has no blocks");
  }
  GUPT_ASSIGN_OR_RETURN(BlockSet blocks, MaterializeBlocks(dataset, plan));
  return ExecuteOnBlocks(factory, blocks, fallback);
}

Result<BlockExecutionReport> ComputationManager::ExecuteOnBlocks(
    const ProgramFactory& factory, const BlockSet& blocks, const Row& fallback,
    const std::string& pool_token) const {
  if (blocks.empty()) {
    return Status::InvalidArgument("block set has no blocks");
  }
  const bool use_pool = chamber_pool_ != nullptr && !pool_token.empty();

  BlockExecutionReport report;
  report.runs.resize(blocks.num_blocks());
  report.timings.resize(blocks.num_blocks());
  std::vector<Status> statuses(blocks.num_blocks(), Status::OK());

  auto execute_one = [&](std::size_t i) {
    // Tag this thread for the sampling profiler: on a pool worker the
    // coordinator's StageScope tag does not apply, so without this the
    // fan-out's samples would fold under stage:untagged.
    obs::prof::ScopedStageTag stage_tag("execute_blocks");
    BlockTiming& timing = report.timings[i];
    timing.worker_id = ThreadPool::CurrentWorkerId();
    timing.start = std::chrono::steady_clock::now();
    // Fault site: an injected error here is an infrastructure failure of
    // the manager itself (not the untrusted program), so it surfaces as an
    // ExecuteOnBlocks error rather than a per-block fallback.
    if (failpoints::Eval("exec.computation_manager.block") !=
        failpoints::FireAction::kNone) {
      timing.end = std::chrono::steady_clock::now();
      statuses[i] = Status::Internal(
          failpoints::InjectedMessage("exec.computation_manager.block"));
      return;
    }
    Result<ChamberRun> run = Status::Internal("never ran");
    if (use_pool) {
      // Pre-warmed worker lease: zero-copy view in, contiguous column
      // slices over the pipe, no fork on this path.
      run = chamber_pool_->Execute(pool_token, blocks.view(i), fallback);
    } else if (chamber_.policy().process_isolation) {
      run = ProcessChamber(chamber_.policy())
                .Execute(factory, blocks.block(i), fallback);
    } else {
      run = chamber_.Execute(factory, blocks.block(i), fallback);
    }
    timing.end = std::chrono::steady_clock::now();
    if (run.ok()) {
      report.runs[i] = std::move(run).value();
    } else {
      statuses[i] = run.status();
    }
  };

  if (!use_pool && pool_ != nullptr && chamber_.policy().process_isolation) {
    return Status::InvalidArgument(
        "process isolation requires the sequential computation manager "
        "(forking from a multi-threaded pool is unsafe)");
  }
  if (pool_ != nullptr) {
    pool_->ParallelFor(blocks.num_blocks(), execute_one);
  } else {
    for (std::size_t i = 0; i < blocks.num_blocks(); ++i) execute_one(i);
  }

  for (const Status& s : statuses) {
    GUPT_RETURN_IF_ERROR(s);
  }
  for (const ChamberRun& run : report.runs) {
    if (run.used_fallback) ++report.fallback_count;
    if (run.deadline_exceeded) ++report.deadline_exceeded_count;
    report.policy_violation_count += run.policy_violations;
    report.child_user_cpu_ns += run.child_user_cpu_ns;
    report.child_sys_cpu_ns += run.child_sys_cpu_ns;
    report.child_max_rss_kb =
        std::max(report.child_max_rss_kb, run.child_max_rss_kb);
    block_duration_histogram_->Observe(
        std::chrono::duration<double>(run.elapsed).count());
    (run.used_fallback ? blocks_fallback_counter_ : blocks_ok_counter_)
        ->Increment();
  }
  deadline_counter_->Increment(
      static_cast<double>(report.deadline_exceeded_count));
  violation_counter_->Increment(
      static_cast<double>(report.policy_violation_count));
  if (report.child_user_cpu_ns > 0) {
    child_user_cpu_counter_->Increment(
        static_cast<double>(report.child_user_cpu_ns) / 1e9);
  }
  if (report.child_sys_cpu_ns > 0) {
    child_sys_cpu_counter_->Increment(
        static_cast<double>(report.child_sys_cpu_ns) / 1e9);
  }
  const double child_rss_bytes =
      static_cast<double>(report.child_max_rss_kb) * 1024.0;
  if (child_rss_bytes > child_max_rss_gauge_->Value()) {
    child_max_rss_gauge_->Set(child_rss_bytes);  // racy max: a watermark
  }
  return report;
}

Result<ChamberRun> ComputationManager::ExecuteOnce(
    const ProgramFactory& factory, const Dataset& dataset,
    const Row& fallback) const {
  return chamber_.Execute(factory, dataset, fallback);
}

}  // namespace gupt
