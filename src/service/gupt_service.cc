#include "service/gupt_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "data/budget_store.h"
#include "obs/introspect/trace_event.h"
#include "obs/prof/profiler.h"
#include "obs/series/render.h"
#include "obs/trace.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// 17 significant digits: enough for a double to round-trip exactly, so
/// /budgetz totals can be compared against the accountant bit-for-bit.
std::string JsonDouble(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

/// Serialises a ProgramSpec into the opaque token a pool worker resolves
/// back through its captured registry. Newline-delimited: program names
/// and parameter keys/values never contain newlines (they come from
/// textual request fields), and params is an ordered map so equal specs
/// produce equal tokens.
std::string ProgramToken(const ProgramSpec& spec) {
  std::string token = spec.name;
  for (const auto& [key, value] : spec.params) {
    token += '\n';
    token += key;
    token += '=';
    token += value;
  }
  return token;
}

/// Inverse of ProgramToken, evaluated inside the pool worker.
Result<ProgramSpec> ParseProgramToken(const std::string& token) {
  ProgramSpec spec;
  std::stringstream stream(token);
  if (!std::getline(stream, spec.name) || spec.name.empty()) {
    return Status::InvalidArgument("pool program token has no program name");
  }
  std::string line;
  while (std::getline(stream, line)) {
    std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("pool program token param is not k=v: " +
                                     line);
    }
    spec.params[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return spec;
}

}  // namespace

GuptService::GuptService(ServiceOptions options, ProgramRegistry registry)
    : options_(std::move(options)),
      registry_(std::move(registry)),
      trace_ring_(options_.trace_ring_capacity) {
  // The service is the process's long-lived entry point, so it owns env
  // arming (once per process; a no-op for later instances and when the
  // variable is unset).
  failpoints::ArmFromEnvironment();
  if (options_.chamber_pool_workers > 0) {
    // Forked HERE, before the admission pool, SVT registry, or the
    // introspection server create any thread: the pool's fork safety
    // contract ("from a single-threaded point") holds by construction.
    chamber_pool_ = std::make_unique<ChamberPool>(
        options_.runtime.chamber_policy, options_.chamber_pool_workers);
    chamber_pool_->SetProgramResolver(
        // Captures a copy of the vetted registry by value: the worker
        // resolves tokens against the same program set the parent
        // validated at admission, with no shared mutable state.
        [registry = registry_](const std::string& token)
            -> Result<ProgramFactory> {
          GUPT_ASSIGN_OR_RETURN(ProgramSpec spec, ParseProgramToken(token));
          return registry.Build(spec);
        });
    Status started = chamber_pool_->Start();
    if (started.ok()) {
      options_.runtime.chamber_pool = chamber_pool_.get();
    } else {
      // Degraded but correct: queries fall back to the fork/in-thread
      // chamber paths with identical DP semantics.
      GUPT_LOG(kError) << "chamber pool failed to start ("
                       << started.ToString()
                       << "); falling back to per-block chambers";
      chamber_pool_.reset();
    }
  }
  runtime_ = std::make_unique<GuptRuntime>(&manager_, options_.runtime);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Get();
  metrics_.requests_accepted = metrics.GetCounter(
      "gupt_service_requests_total", "Query requests by outcome.",
      {{"outcome", "accepted"}});
  metrics_.requests_refused = metrics.GetCounter(
      "gupt_service_requests_total", "Query requests by outcome.",
      {{"outcome", "refused"}});
  metrics_.requests_cached = metrics.GetCounter(
      "gupt_service_requests_total", "Query requests by outcome.",
      {{"outcome", "cached"}});
  metrics_.admission_rejected = metrics.GetCounter(
      "gupt_service_admission_rejected_total",
      "Submissions refused because the admission queue was full.");
  metrics_.admission_queue_depth = metrics.GetGauge(
      "gupt_service_admission_queue_depth",
      "Queries admitted but not yet answered (queued + running).");
  metrics_.cache_evictions = metrics.GetCounter(
      "gupt_service_cache_evictions_total",
      "Query-cache entries evicted by the LRU capacity bound.");
  metrics_.audit_records = metrics.GetCounter(
      "gupt_service_audit_records_total",
      "Audit records ever written (survives ring-buffer rotation).");
  metrics_.traces_recorded = metrics.GetCounter(
      "gupt_introspect_traces_total",
      "Completed query traces pushed into the /tracez ring.");
  metrics_.traces_retained = metrics.GetGauge(
      "gupt_introspect_traces_retained_count",
      "Completed query traces currently retained for /tracez.");
  metrics_.profile_requests_ok = metrics.GetCounter(
      "gupt_prof_profile_requests_total", "/profilez captures by outcome.",
      {{"outcome", "ok"}});
  metrics_.profile_requests_busy = metrics.GetCounter(
      "gupt_prof_profile_requests_total", "/profilez captures by outcome.",
      {{"outcome", "busy"}});
  metrics_.profile_requests_error = metrics.GetCounter(
      "gupt_prof_profile_requests_total", "/profilez captures by outcome.",
      {{"outcome", "error"}});
  metrics_.samples_recorded = metrics.GetCounter(
      "gupt_prof_samples_recorded_total",
      "Stack samples captured by completed /profilez requests.");
  metrics_.samples_dropped = metrics.GetCounter(
      "gupt_prof_samples_dropped_total",
      "Stack samples lost to a full profiler buffer.");
  metrics_.slow_queries = metrics.GetCounter(
      "gupt_prof_slow_queries_total",
      "Completed queries retained (at least momentarily) by /slowz.");
  if (options_.slow_query_log_capacity > 0) {
    slow_query_log_ = std::make_unique<obs::prof::SlowQueryLog>(
        options_.slow_query_log_capacity,
        options_.slow_query_threshold_seconds);
  }
  SvtRegistryOptions svt_options;
  svt_options.capacity = options_.svt_session_capacity;
  svt_options.idle_timeout =
      std::chrono::milliseconds(options_.svt_idle_timeout_ms);
  // SVT noise shares the master seed but forks a dedicated stream band, so
  // session randomness is reproducible yet independent of the one-shot path.
  svt_sessions_ = std::make_unique<SvtSessionRegistry>(
      svt_options, &manager_, &trace_ring_, options_.runtime.seed);
  if (options_.series_capacity > 0) {
    series_store_ =
        std::make_unique<obs::series::SeriesStore>(options_.series_capacity);
    alert_engine_ = std::make_unique<obs::series::AlertRuleEngine>(&metrics);
    obs::series::BuiltinRuleOptions rule_options;
    rule_options.budget_horizon_seconds = options_.budget_alert_horizon_seconds;
    rule_options.collector_period_ms = options_.collector_period_ms;
    rule_options.window_ms = options_.series_window_ms;
    rule_options.admission_queue_capacity = options_.admission_queue_capacity;
    rule_options.svt_session_capacity = options_.svt_session_capacity;
    rule_options.chamber_pool_enabled = chamber_pool_ != nullptr;
    for (obs::series::AlertRule& rule :
         obs::series::BuiltinAlertRules(rule_options)) {
      alert_engine_->AddRule(std::move(rule));
    }
    obs::series::SeriesCollectorOptions collector_options;
    collector_options.period_ms = options_.collector_period_ms;
    collector_options.forecast_window_ms = options_.series_window_ms;
    collector_options.registry = &metrics;
    collector_options.budget_source = [this] { return BudgetStatsForSeries(); };
    collector_options.qid_source = [] { return obs::LastQueryId(); };
    // Fault sites, wired through obs-layer hooks (obs sits below testing/
    // and must stay failpoint-free). The collector only reads the ledgers,
    // so a fired gate skips a tick and nothing else — crash is treated as
    // error here because aborting the process from an observer thread is
    // the one thing a sampler must never do.
    collector_options.on_collect = [] {
      return failpoints::Eval("service.series.collect") ==
             failpoints::FireAction::kNone;
    };
    collector_options.on_evaluate = [] {
      return failpoints::Eval("service.series.evaluate") ==
             failpoints::FireAction::kNone;
    };
    collector_ = std::make_unique<obs::series::SeriesCollector>(
        std::move(collector_options), series_store_.get(),
        alert_engine_.get());
    collector_->Start();
  }
  admission_pool_ = std::make_unique<ThreadPool>(
      options_.admission_workers > 0 ? options_.admission_workers : 1);
  if (options_.introspect_port >= 0) {
    Result<int> started = StartIntrospection(options_.introspect_port);
    if (!started.ok()) {
      GUPT_LOG(kError) << "introspection server failed to start: "
                       << started.status().ToString();
    }
  }
}

GuptService::~GuptService() {
  // Stop serving scrapes before draining: a request that arrives during
  // teardown must not observe a half-destroyed service.
  StopIntrospection();
  // Stop the sampler before the admission drain: a tick in progress
  // completes (Stop joins), and no tick can start while queued queries
  // finish against a service that is shutting down.
  if (collector_ != nullptr) collector_->Stop();
  // The pool's destructor drains the queue, so every future returned by
  // SubmitQueryAsync completes before the members it references go away.
  admission_pool_.reset();
}

Result<int> GuptService::StartIntrospection(int port) {
  std::lock_guard<std::mutex> lock(introspect_mu_);
  if (introspect_ != nullptr && introspect_->serving()) {
    return Status::AlreadyExists("introspection server already on port " +
                                 std::to_string(introspect_->port()));
  }
  obs::introspect::HttpServerOptions server_options;
  server_options.port = port;
  server_options.handler_threads =
      options_.introspect_handler_threads > 0
          ? options_.introspect_handler_threads
          : 1;
  // Fault site for the accept loop, wired through the obs-layer hook (the
  // obs layer sits below testing/ and must stay failpoint-free). A fired
  // failpoint drops the connection unanswered — the client sees a reset,
  // as if the listener were wedged.
  server_options.on_accept = [] {
    return failpoints::Eval("service.introspect.accept") ==
           failpoints::FireAction::kNone;
  };
  auto server = std::make_unique<obs::introspect::HttpServer>(server_options);
  InstallIntrospectionHandlers(server.get());
  std::string error;
  if (!server->Start(&error)) {
    return Status::Internal("introspection server failed to bind: " + error);
  }
  introspect_ = std::move(server);
  profilez_cancel_.store(false, std::memory_order_release);
  GUPT_LOG(kInfo) << "introspection server serving on 127.0.0.1:"
                  << introspect_->port();
  return introspect_->port();
}

void GuptService::StopIntrospection() {
  // Cancel any in-flight /profilez capture first: Stop() joins the handler
  // threads, and the capture sleeps in chunks checking this flag.
  profilez_cancel_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(introspect_mu_);
  if (introspect_ != nullptr) introspect_->Stop();
}

int GuptService::introspect_port() const {
  std::lock_guard<std::mutex> lock(introspect_mu_);
  return introspect_ != nullptr && introspect_->serving() ? introspect_->port()
                                                          : -1;
}

bool GuptService::Healthy(std::string* reason) const {
  if (admission_pool_ == nullptr) {
    if (reason != nullptr) *reason = "admission pool not running (draining)";
    return false;
  }
  const std::size_t capacity = options_.admission_queue_capacity;
  const std::size_t depth =
      admission_in_flight_.load(std::memory_order_acquire);
  if (capacity > 0 && depth >= capacity) {
    if (reason != nullptr) {
      *reason = "admission queue full (" + std::to_string(depth) + "/" +
                std::to_string(capacity) + ")";
    }
    return false;
  }
  if (reason != nullptr) reason->clear();
  return true;
}

bool GuptService::Degraded(std::string* reason) const {
  std::vector<std::string> reasons;
  std::string storm;
  if (PoolRespawnStorm(&storm)) reasons.push_back(storm);
  if (alert_engine_ != nullptr) {
    for (const std::string& name :
         alert_engine_->FiringNames(obs::series::AlertSeverity::kCritical)) {
      reasons.push_back("critical alert firing: " + name);
    }
  }
  if (reasons.empty()) {
    if (reason != nullptr) reason->clear();
    return false;
  }
  if (reason != nullptr) {
    reason->clear();
    for (std::size_t i = 0; i < reasons.size(); ++i) {
      if (i > 0) *reason += "; ";
      *reason += reasons[i];
    }
  }
  return true;
}

bool GuptService::PoolRespawnStorm(std::string* detail) const {
  if (chamber_pool_ == nullptr || series_store_ == nullptr) return false;
  const std::int64_t latest = series_store_->LatestTimestampNs();
  if (latest == 0) return false;
  const std::int64_t min_t_ns = latest - options_.series_window_ms * 1000000;
  std::vector<obs::series::SeriesPoint> respawns = series_store_->Points(
      "gupt_chamber_pool_respawns_total:rate", min_t_ns);
  std::vector<obs::series::SeriesPoint> leases = series_store_->Points(
      "gupt_chamber_pool_leases_total:rate", min_t_ns);
  if (respawns.empty() || leases.empty()) return false;
  double respawn_mean = 0.0;
  for (const auto& p : respawns) respawn_mean += p.value;
  respawn_mean /= static_cast<double>(respawns.size());
  double lease_mean = 0.0;
  for (const auto& p : leases) lease_mean += p.value;
  lease_mean /= static_cast<double>(leases.size());
  // A steady crash-every-lease storm has respawns = leases - workers
  // (the initial workers never respawned), so the ratio approaches 1
  // from below; half of all leases needing a respawn is already a storm.
  if (respawn_mean <= 0.0 || respawn_mean < 0.5 * lease_mean) return false;
  if (detail != nullptr) {
    std::ostringstream out;
    out.precision(3);
    out << "chamber pool respawn storm (" << respawn_mean
        << " respawns/s vs " << lease_mean
        << " leases/s over last " << (options_.series_window_ms / 1000)
        << "s; crashed leases are falling back to fork)";
    *detail = out.str();
  }
  return true;
}

std::vector<obs::series::BudgetStat> GuptService::BudgetStatsForSeries()
    const {
  std::vector<obs::series::BudgetStat> out;
  for (const DatasetBudgetTotals& entry : manager_.BudgetTotalsSnapshot()) {
    obs::series::BudgetStat stat;
    stat.dataset = entry.dataset;
    stat.total_epsilon = entry.totals.total_epsilon;
    stat.spent_epsilon = entry.totals.spent_epsilon;
    stat.num_charges = entry.totals.num_charges;
    out.push_back(std::move(stat));
  }
  return out;
}

std::string GuptService::HealthzBody(bool healthy, const std::string& reason,
                                     bool verbose) const {
  std::ostringstream out;
  std::string degraded_reason;
  const bool degraded = healthy && Degraded(&degraded_reason);
  if (!healthy) {
    out << reason << "\n";
  } else if (degraded) {
    out << "degraded: " << degraded_reason << "\n";
  } else {
    out << "ok\n";
  }
  if (!verbose) return out.str();
  out << "admission: depth="
      << admission_in_flight_.load(std::memory_order_acquire)
      << " capacity=" << options_.admission_queue_capacity << "\n";
  if (chamber_pool_ != nullptr) {
    const ChamberPoolStats stats = chamber_pool_->Stats();
    std::string storm;
    out << "chamber_pool: workers_alive=" << stats.workers_alive
        << " leases=" << stats.leases << " resets=" << stats.resets
        << " respawns=" << stats.respawns << " respawn_storm="
        << (PoolRespawnStorm(&storm) ? "yes" : "no") << "\n";
  } else {
    out << "chamber_pool: disabled\n";
  }
  if (alert_engine_ != nullptr) {
    std::vector<std::string> firing =
        alert_engine_->FiringNames(obs::series::AlertSeverity::kInfo);
    std::vector<std::string> critical =
        alert_engine_->FiringNames(obs::series::AlertSeverity::kCritical);
    out << "alerts: firing=" << firing.size() << " critical="
        << critical.size();
    for (const std::string& name : firing) out << " " << name;
    out << "\n";
    out << "collector: ticks=" << (collector_ != nullptr ? collector_->Ticks() : 0)
        << " period_ms=" << options_.collector_period_ms << " series="
        << series_store_->NumSeries() << "\n";
  } else {
    out << "alerts: disabled\n";
  }
  return out.str();
}

void GuptService::InstallIntrospectionHandlers(
    obs::introspect::HttpServer* server) {
  using obs::introspect::HttpRequest;
  using obs::introspect::HttpResponse;
  server->Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = obs::MetricsRegistry::Get().ExportPrometheus();
    return response;
  });
  server->Handle("/varz", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = obs::MetricsRegistry::Get().ExportJson();
    return response;
  });
  server->Handle("/healthz", [this](const HttpRequest& request) {
    HttpResponse response;
    const bool verbose = request.Param("verbose", "0") == "1";
    std::string reason;
    const bool healthy = Healthy(&reason);
    if (!healthy) response.status = 503;
    response.body = HealthzBody(healthy, reason, verbose);
    return response;
  });
  server->Handle("/timeseriesz", [this](const HttpRequest& request) {
    HttpResponse response;
    if (series_store_ == nullptr) {
      response.status = 404;
      response.body = "time-series collector disabled (series_capacity=0)\n";
      return response;
    }
    obs::series::RenderInfo info;
    info.period_ms = options_.collector_period_ms;
    info.capacity = options_.series_capacity;
    info.ticks = collector_ != nullptr ? collector_->Ticks() : 0;
    const std::string name = request.Param("name", "");
    const double window = std::atof(request.Param("window", "0").c_str());
    if (request.Param("format", "text") == "json") {
      response.content_type = "application/json";
      response.body =
          obs::series::TimeserieszJson(*series_store_, name, window, info);
    } else {
      response.body =
          obs::series::TimeserieszText(*series_store_, name, window, info);
    }
    return response;
  });
  server->Handle("/alertz", [this](const HttpRequest& request) {
    HttpResponse response;
    if (alert_engine_ == nullptr) {
      response.status = 404;
      response.body = "alert engine disabled (series_capacity=0)\n";
      return response;
    }
    if (request.Param("format", "text") == "json") {
      response.content_type = "application/json";
      response.body = obs::series::AlertzJson(*alert_engine_);
    } else {
      response.body = obs::series::AlertzText(*alert_engine_);
    }
    return response;
  });
  server->Handle("/budgetz", [this](const HttpRequest& request) {
    HttpResponse response;
    if (request.Param("format", "text") == "json") {
      response.content_type = "application/json";
      response.body = BudgetzJson();
    } else {
      response.body = BudgetzText();
    }
    return response;
  });
  server->Handle("/tracez", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body =
        obs::introspect::ExportChromeTrace(trace_ring_.Snapshot());
    return response;
  });
  server->Handle("/svtz", [this](const HttpRequest& request) {
    HttpResponse response;
    if (request.Param("format", "text") == "json") {
      response.content_type = "application/json";
      response.body = SvtzJson();
    } else {
      response.body = SvtzText();
    }
    return response;
  });
  server->Handle("/slowz", [this](const HttpRequest& request) {
    HttpResponse response;
    if (slow_query_log_ == nullptr) {
      response.status = 404;
      response.body = "slow-query log disabled (slow_query_log_capacity=0)\n";
      return response;
    }
    if (request.Param("format", "text") == "json") {
      response.content_type = "application/json";
      response.body = SlowzJson();
    } else {
      response.body = SlowzText();
    }
    return response;
  });
  server->Handle("/profilez", [this](const HttpRequest& request) {
    return HandleProfilez(request);
  });
}

obs::introspect::HttpResponse GuptService::HandleProfilez(
    const obs::introspect::HttpRequest& request) {
  obs::introspect::HttpResponse response;
  // Fault site: a fired /profilez failpoint models the capture machinery
  // breaking mid-request. The handler answers 503 without arming the
  // timer, so queries in flight and later captures are unaffected.
  if (failpoints::Eval("service.introspect.profilez") !=
      failpoints::FireAction::kNone) {
    metrics_.profile_requests_error->Increment();
    response.status = 503;
    response.body =
        failpoints::InjectedMessage("service.introspect.profilez") + "\n";
    return response;
  }

  char* end = nullptr;
  const std::string seconds_param = request.Param("seconds", "1");
  double seconds = std::strtod(seconds_param.c_str(), &end);
  if (end == seconds_param.c_str() || *end != '\0' || !(seconds > 0)) {
    metrics_.profile_requests_error->Increment();
    response.status = 400;
    response.body = "bad ?seconds= (want a positive number)\n";
    return response;
  }
  const std::string hz_param = request.Param("hz", "99");
  long hz = std::strtol(hz_param.c_str(), &end, 10);
  if (end == hz_param.c_str() || *end != '\0' || hz < 1 || hz > 1000) {
    metrics_.profile_requests_error->Increment();
    response.status = 400;
    response.body = "bad ?hz= (want an integer in [1,1000])\n";
    return response;
  }
  if (options_.profilez_max_seconds > 0 &&
      seconds > options_.profilez_max_seconds) {
    seconds = options_.profilez_max_seconds;
  }

  obs::prof::ProfilerOptions profiler_options;
  profiler_options.hz = static_cast<int>(hz);
  if (!obs::prof::Profiler::Get().Start(profiler_options)) {
    metrics_.profile_requests_busy->Increment();
    response.status = 503;
    response.body = "profiler busy (another capture is running)\n";
    return response;
  }

  // Sleep out the capture window in short chunks so StopIntrospection can
  // cancel a long capture instead of waiting on this handler thread.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (!profilez_cancel_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            remaining, std::chrono::milliseconds(50)));
  }

  obs::prof::Profile profile = obs::prof::Profiler::Get().Stop();
  metrics_.profile_requests_ok->Increment();
  metrics_.samples_recorded->Increment(
      static_cast<double>(profile.samples.size()));
  metrics_.samples_dropped->Increment(static_cast<double>(profile.dropped));
  response.content_type = "text/plain; charset=utf-8";
  response.body = obs::prof::FoldedStacks(profile);
  return response;
}

std::string GuptService::SlowzJson() const {
  std::ostringstream out;
  out << "{\"capacity\":" << slow_query_log_->capacity()
      << ",\"threshold_seconds\":"
      << JsonDouble(slow_query_log_->threshold_seconds())
      << ",\"queries_considered\":" << slow_query_log_->total_considered()
      << ",\"queries\":[";
  bool first = true;
  for (const obs::prof::SlowQueryEntry& entry :
       slow_query_log_->Snapshot()) {
    if (!first) out << ',';
    first = false;
    const obs::prof::ResourceLedger& res = entry.resources;
    out << "{\"query_id\":" << entry.query_id << ",\"analyst\":\""
        << JsonEscape(entry.analyst) << "\",\"dataset\":\""
        << JsonEscape(entry.dataset) << "\",\"program\":\""
        << JsonEscape(entry.program) << "\",\"status\":\""
        << JsonEscape(entry.status) << "\",\"completed_unix_ms\":"
        << entry.completed_unix_ms
        << ",\"wall_seconds\":" << JsonDouble(entry.wall_seconds)
        << ",\"cpu_seconds\":"
        << JsonDouble(static_cast<double>(res.cpu_ns) / 1e9)
        << ",\"child_cpu_seconds\":"
        << JsonDouble(static_cast<double>(res.child_user_cpu_ns +
                                          res.child_sys_cpu_ns) /
                      1e9)
        << ",\"max_rss_kb\":" << res.max_rss_kb
        << ",\"child_max_rss_kb\":" << res.child_max_rss_kb
        << ",\"minor_faults\":" << res.minor_faults
        << ",\"major_faults\":" << res.major_faults
        << ",\"ctx_switches\":{\"voluntary\":" << res.voluntary_ctx_switches
        << ",\"involuntary\":" << res.involuntary_ctx_switches
        << "},\"stages\":[";
    bool first_stage = true;
    for (const obs::prof::StageBreakdown& stage : entry.stages) {
      if (!first_stage) out << ',';
      first_stage = false;
      out << "{\"name\":\"" << JsonEscape(stage.name)
          << "\",\"wall_seconds\":" << JsonDouble(stage.wall_seconds)
          << ",\"cpu_seconds\":" << JsonDouble(stage.cpu_seconds)
          << ",\"ok\":" << (stage.ok ? "true" : "false") << '}';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string GuptService::SlowzText() const {
  std::vector<obs::prof::SlowQueryEntry> entries =
      slow_query_log_->Snapshot();
  std::ostringstream out;
  out << "slow queries: " << entries.size() << " retained (capacity "
      << slow_query_log_->capacity() << ", threshold "
      << slow_query_log_->threshold_seconds() << "s, "
      << slow_query_log_->total_considered() << " considered)\n";
  for (const obs::prof::SlowQueryEntry& entry : entries) {
    out << "\nqid=" << entry.query_id << " " << entry.program << " on "
        << entry.dataset << " by " << entry.analyst << "\n"
        << "  status   " << entry.status << "\n"
        << "  wall     " << entry.wall_seconds * 1e3 << "ms\n"
        << "  ledger   " << entry.resources.Summary() << "\n"
        << "  stages:\n";
    for (const obs::prof::StageBreakdown& stage : entry.stages) {
      out << "    " << stage.name << "  wall=" << stage.wall_seconds * 1e3
          << "ms cpu=" << stage.cpu_seconds * 1e3 << "ms"
          << (stage.ok ? "" : " (err)") << "\n";
    }
  }
  return out.str();
}

void GuptService::RecordSlowQuery(const QueryRequest& request,
                                  const QueryReport& report) {
  if (slow_query_log_ == nullptr) return;
  obs::prof::SlowQueryEntry entry;
  entry.query_id = report.trace.query_id();
  entry.analyst = request.analyst.empty() ? "<anonymous>" : request.analyst;
  entry.dataset = request.dataset;
  entry.program = request.program.name;
  entry.status = "ok";
  entry.wall_seconds = std::chrono::duration<double>(report.elapsed).count();
  entry.resources = report.resources;
  entry.stages.reserve(report.trace.spans().size());
  for (const obs::SpanRecord& span : report.trace.spans()) {
    obs::prof::StageBreakdown stage;
    stage.name = span.name;
    stage.wall_seconds = std::chrono::duration<double>(span.duration).count();
    stage.cpu_seconds =
        span.cpu_ns >= 0 ? static_cast<double>(span.cpu_ns) / 1e9 : 0.0;
    stage.ok = span.ok;
    entry.stages.push_back(std::move(stage));
  }
  entry.completed_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  if (slow_query_log_->Record(std::move(entry))) {
    metrics_.slow_queries->Increment();
  }
}

std::string GuptService::SvtzJson() const {
  std::vector<SvtSessionInfo> sessions = SvtSessions();
  std::ostringstream out;
  out << "{\"sessions\":[";
  bool first = true;
  for (const SvtSessionInfo& info : sessions) {
    if (!first) out << ',';
    first = false;
    out << "{\"session_id\":\"" << JsonEscape(info.session_id) << "\""
        << ",\"analyst\":\"" << JsonEscape(info.analyst) << "\""
        << ",\"dataset\":\"" << JsonEscape(info.dataset) << "\""
        << ",\"threshold\":" << JsonDouble(info.threshold)
        << ",\"epsilon\":" << JsonDouble(info.epsilon)
        << ",\"max_positives\":" << info.max_positives
        << ",\"positives_spent\":" << info.positives_spent
        << ",\"remaining_positives\":" << info.remaining_positives
        << ",\"queries_answered\":" << info.queries_answered
        << ",\"below_answered\":" << info.below_answered
        << ",\"exhausted\":" << (info.exhausted ? "true" : "false")
        << ",\"idle_seconds\":"
        << JsonDouble(std::chrono::duration<double>(info.idle).count())
        << '}';
  }
  out << "]}";
  return out.str();
}

std::string GuptService::SvtzText() const {
  std::vector<SvtSessionInfo> sessions = SvtSessions();
  std::ostringstream out;
  out.precision(17);
  out << "svt sessions: " << sessions.size() << " live\n";
  for (const SvtSessionInfo& info : sessions) {
    out << "\nsession " << info.session_id << "\n"
        << "  analyst             " << info.analyst << "\n"
        << "  dataset             " << info.dataset << "\n"
        << "  threshold           " << info.threshold << "\n"
        << "  epsilon (charged)   " << info.epsilon << "\n"
        << "  positives           " << info.positives_spent << "/"
        << info.max_positives << " spent ("
        << info.remaining_positives << " remaining)\n"
        << "  queries answered    " << info.queries_answered << " ("
        << info.below_answered << " below)\n"
        << "  idle                "
        << std::chrono::duration<double>(info.idle).count() << "s\n";
  }
  return out.str();
}

std::string GuptService::BudgetzJson() const {
  std::ostringstream out;
  out << "{\"datasets\":[";
  bool first_dataset = true;
  for (const DatasetBudgetSnapshot& snapshot : manager_.BudgetSnapshots()) {
    if (!first_dataset) out << ',';
    first_dataset = false;
    const dp::AccountantSnapshot& budget = snapshot.budget;
    const AmplificationStats amplification =
        AmplificationTotals(snapshot.dataset);
    out << "{\"dataset\":\"" << JsonEscape(snapshot.dataset) << "\""
        << ",\"total_epsilon\":" << JsonDouble(budget.total_epsilon)
        << ",\"spent_epsilon\":" << JsonDouble(budget.spent_epsilon)
        << ",\"remaining_epsilon\":" << JsonDouble(budget.remaining_epsilon())
        << ",\"amplification\":{\"queries\":" << amplification.queries
        << ",\"epsilon_raw\":" << JsonDouble(amplification.epsilon_raw)
        << ",\"epsilon_charged\":" << JsonDouble(amplification.epsilon_charged)
        << ",\"epsilon_saved\":" << JsonDouble(amplification.epsilon_saved())
        << '}'
        << ",\"num_charges\":" << budget.charges.size() << ",\"charges\":[";
    bool first_charge = true;
    for (const dp::BudgetCharge& charge : budget.charges) {
      if (!first_charge) out << ',';
      first_charge = false;
      out << "{\"label\":\"" << JsonEscape(charge.label)
          << "\",\"epsilon\":" << JsonDouble(charge.epsilon) << '}';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string GuptService::BudgetzText() const {
  std::vector<DatasetBudgetSnapshot> snapshots = manager_.BudgetSnapshots();
  std::ostringstream out;
  out.precision(17);
  out << "privacy-budget ledger: " << snapshots.size() << " dataset(s)\n";
  for (const DatasetBudgetSnapshot& snapshot : snapshots) {
    const dp::AccountantSnapshot& budget = snapshot.budget;
    out << "\ndataset " << snapshot.dataset << "\n"
        << "  epsilon total     " << budget.total_epsilon << "\n"
        << "  epsilon spent     " << budget.spent_epsilon << "\n"
        << "  epsilon remaining " << budget.remaining_epsilon() << "\n";
    const AmplificationStats amplification =
        AmplificationTotals(snapshot.dataset);
    if (amplification.queries > 0) {
      out << "  amplified queries " << amplification.queries
          << " (epsilon raw " << amplification.epsilon_raw << ", charged "
          << amplification.epsilon_charged << ", saved "
          << amplification.epsilon_saved() << ")\n";
    }
    out << "  charges (" << budget.charges.size() << "):\n";
    std::size_t index = 0;
    for (const dp::BudgetCharge& charge : budget.charges) {
      out << "    [" << ++index << "] epsilon=" << charge.epsilon << "  "
          << charge.label << "\n";
    }
  }
  return out.str();
}

std::string GuptService::DumpMetrics(MetricsFormat format) {
  return format == MetricsFormat::kPrometheus
             ? obs::MetricsRegistry::Get().ExportPrometheus()
             : obs::MetricsRegistry::Get().ExportJson();
}

Status GuptService::RegisterDataset(const std::string& name, Dataset data,
                                    DatasetOptions dataset_options) {
  return manager_.Register(name, std::move(data), std::move(dataset_options));
}

Result<double> GuptService::RemainingBudget(const std::string& name) const {
  GUPT_ASSIGN_OR_RETURN(auto ds, manager_.Get(name));
  return ds->accountant().remaining_epsilon();
}

std::vector<std::string> GuptService::ListPrograms() const {
  return registry_.ListPrograms();
}

std::vector<std::string> GuptService::ListDatasets() const {
  return manager_.ListNames();
}

std::vector<AuditRecord> GuptService::audit_log() const {
  std::lock_guard<std::mutex> lock(audit_mu_);
  return {audit_log_.begin(), audit_log_.end()};
}

GuptService::AmplificationStats GuptService::AmplificationTotals(
    const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(amplification_mu_);
  auto it = amplification_stats_.find(dataset);
  return it == amplification_stats_.end() ? AmplificationStats{} : it->second;
}

Status GuptService::RestoreLedger() {
  if (options_.ledger_path.empty()) {
    return Status::InvalidArgument("service has no ledger_path configured");
  }
  Status loaded = LoadBudgets(&manager_, options_.ledger_path);
  if (loaded.code() == StatusCode::kNotFound) {
    return Status::OK();  // first boot: nothing to restore
  }
  return loaded;
}

Status GuptService::PersistLedger() const {
  if (options_.ledger_path.empty()) {
    return Status::InvalidArgument("service has no ledger_path configured");
  }
  return SaveBudgets(manager_, options_.ledger_path);
}

Result<QueryReport> GuptService::Execute(const QueryRequest& request) {
  GUPT_ASSIGN_OR_RETURN(ProgramFactory program,
                        registry_.Build(request.program));
  QuerySpec spec;
  spec.program = std::move(program);
  spec.epsilon = request.epsilon;
  spec.accuracy_goal = request.accuracy_goal;
  switch (request.range_mode) {
    case RangeMode::kTight:
      spec.range = OutputRangeSpec::Tight(request.output_ranges);
      break;
    case RangeMode::kLoose:
      spec.range = OutputRangeSpec::Loose(request.output_ranges);
      break;
    case RangeMode::kHelper:
      return Status::InvalidArgument(
          "helper mode requires a code-level range translator; use the "
          "library API");
  }
  spec.block_size = request.block_size;
  spec.optimize_block_size = request.optimize_block_size;
  spec.gamma = request.gamma;
  spec.records_per_user = request.records_per_user;
  spec.amplification = request.amplification.value_or(options_.amplification);
  spec.amplification_rate = request.amplification_rate.has_value()
                                ? request.amplification_rate
                                : options_.amplification_rate;
  if (chamber_pool_ != nullptr) {
    // Every registry program is resolvable inside the workers (they
    // captured a copy of the same registry), so pooled execution applies
    // to all service queries.
    spec.pool_program = ProgramToken(request.program);
  }
  return runtime_->Execute(request.dataset, spec);
}

std::string GuptService::CacheKey(const QueryRequest& request) const {
  if (!request.epsilon.has_value()) return "";  // goal-driven: not cacheable
  std::ostringstream key;
  key.precision(17);
  key << request.dataset << '\x1f' << request.program.name;
  for (const auto& [k, v] : request.program.params) {
    key << '\x1f' << k << '=' << v;
  }
  key << '\x1f' << *request.epsilon << '\x1f'
      << static_cast<int>(request.range_mode);
  for (const Range& r : request.output_ranges) {
    key << '\x1f' << r.lo << ',' << r.hi;
  }
  key << '\x1f' << (request.block_size ? *request.block_size : 0) << '\x1f'
      << request.optimize_block_size << '\x1f' << request.gamma << '\x1f'
      << request.records_per_user << '\x1f'
      << static_cast<int>(
             request.amplification.value_or(options_.amplification));
  const std::optional<double> rate = request.amplification_rate.has_value()
                                         ? request.amplification_rate
                                         : options_.amplification_rate;
  key << '\x1f' << (rate ? *rate : -1.0);
  return key.str();
}

std::optional<QueryReport> GuptService::CacheLookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = query_cache_.find(key);
  if (it == query_cache_.end()) return std::nullopt;
  // Refresh recency: move the key to the front of the LRU list.
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_position);
  return it->second.report;
}

void GuptService::CacheInsert(const std::string& key,
                              const QueryReport& report) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = query_cache_.find(key);
  if (it != query_cache_.end()) {
    // A concurrent identical query already populated the entry (both
    // executed before either inserted); keep the existing release and
    // just refresh its recency.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_position);
    return;
  }
  cache_lru_.push_front(key);
  query_cache_.emplace(key, CacheEntry{report, cache_lru_.begin()});
  const std::size_t capacity = options_.query_cache_capacity;
  while (capacity > 0 && query_cache_.size() > capacity) {
    query_cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
    metrics_.cache_evictions->Increment();
  }
}

void GuptService::AppendAuditRecord(AuditRecord record) {
  std::lock_guard<std::mutex> lock(audit_mu_);
  record.id = ++audit_next_id_;
  audit_log_.push_back(std::move(record));
  metrics_.audit_records->Increment();
  const std::size_t capacity = options_.audit_log_capacity;
  while (capacity > 0 && audit_log_.size() > capacity) {
    audit_log_.pop_front();
  }
}

void GuptService::AuditAdmissionRefusal(const QueryRequest& request,
                                        const Status& refusal) {
  AuditRecord record;
  record.analyst = request.analyst.empty() ? "<anonymous>" : request.analyst;
  record.dataset = request.dataset;
  record.program = request.program.name;
  record.epsilon_requested = request.epsilon.value_or(0.0);
  record.accepted = false;
  record.status = refusal.ToString();
  AppendAuditRecord(std::move(record));
}

Result<QueryReport> GuptService::SubmitQuery(const QueryRequest& request) {
  return SubmitQueryAsync(request).get();
}

std::future<Result<QueryReport>> GuptService::SubmitQueryAsync(
    const QueryRequest& request) {
  auto promise = std::make_shared<std::promise<Result<QueryReport>>>();
  std::future<Result<QueryReport>> future = promise->get_future();

  // Fault site: an injected fire takes the same refusal path as a full
  // queue — audited, counted, nothing charged — so retry-safety claims can
  // be tested without actually saturating the queue.
  if (failpoints::Eval("service.admission.submit") !=
      failpoints::FireAction::kNone) {
    metrics_.requests_refused->Increment();
    Status refusal = Status::Unavailable(
        failpoints::InjectedMessage("service.admission.submit"));
    AuditAdmissionRefusal(request, refusal);
    promise->set_value(refusal);
    return future;
  }

  const std::size_t capacity = options_.admission_queue_capacity;
  std::size_t depth =
      admission_in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (capacity > 0 && depth > capacity) {
    // Refuse instead of blocking: nothing was charged or executed, so the
    // caller can safely retry once the backlog drains.
    admission_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.admission_rejected->Increment();
    metrics_.requests_refused->Increment();
    std::string msg = "admission queue full (capacity ";
    msg += std::to_string(capacity);
    msg += "); retry later";
    Status refusal = Status::Unavailable(std::move(msg));
    AuditAdmissionRefusal(request, refusal);
    promise->set_value(refusal);
    return future;
  }
  metrics_.admission_queue_depth->Set(static_cast<double>(depth));

  admission_pool_->Submit([this, promise, request]() {
    Result<QueryReport> outcome = ProcessQuery(request);
    // Free the queue slot before completing the future so that by the time
    // a submit-and-wait caller resumes, its slot is available again.
    std::size_t remaining =
        admission_in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    metrics_.admission_queue_depth->Set(static_cast<double>(remaining));
    promise->set_value(std::move(outcome));
  });
  return future;
}

Result<QueryReport> GuptService::ProcessQuery(const QueryRequest& request) {
  // Fault site: the query dies on the admission worker after its slot was
  // taken but before any budget is touched. Still audited, so the audit
  // trail stays complete under injected faults.
  if (failpoints::Eval("service.process_query") !=
      failpoints::FireAction::kNone) {
    Status injected =
        Status::Internal(failpoints::InjectedMessage("service.process_query"));
    AuditRecord record;
    record.analyst = request.analyst.empty() ? "<anonymous>" : request.analyst;
    record.dataset = request.dataset;
    record.program = request.program.name;
    record.epsilon_requested = request.epsilon.value_or(0.0);
    record.accepted = false;
    record.status = injected.ToString();
    metrics_.requests_refused->Increment();
    AppendAuditRecord(std::move(record));
    return injected;
  }
  const std::string cache_key =
      options_.enable_query_cache ? CacheKey(request) : "";
  bool from_cache = false;
  std::optional<QueryReport> cached;
  if (!cache_key.empty()) {
    cached = CacheLookup(cache_key);
    from_cache = cached.has_value();
  }

  Result<QueryReport> outcome =
      from_cache ? Result<QueryReport>(*cached) : Execute(request);
  if (!from_cache && outcome.ok() && !cache_key.empty()) {
    CacheInsert(cache_key, outcome.value());
  }

  AuditRecord record;
  record.analyst = request.analyst.empty() ? "<anonymous>" : request.analyst;
  record.dataset = request.dataset;
  record.program = request.program.name;
  record.epsilon_requested = request.epsilon.value_or(0.0);
  record.accepted = outcome.ok();
  record.from_cache = from_cache;
  record.status = outcome.status().ToString();
  if (outcome.ok() && !from_cache) {
    record.epsilon_charged = outcome->epsilon_spent;
    record.amplification =
        dp::AmplificationModeToString(outcome->amplification);
    record.sampling_rate = outcome->sampling_rate;
    record.epsilon_raw = outcome->epsilon_raw;
    if (outcome->amplification != dp::AmplificationMode::kOff) {
      std::lock_guard<std::mutex> lock(amplification_mu_);
      AmplificationStats& stats = amplification_stats_[request.dataset];
      stats.queries += 1;
      stats.epsilon_raw += outcome->epsilon_raw;
      stats.epsilon_charged += outcome->epsilon_spent;
    }
    record.trace_summary = outcome->trace.Summary();
    record.cpu_seconds =
        static_cast<double>(outcome->resources.cpu_ns) / 1e9;
    record.child_cpu_seconds =
        static_cast<double>(outcome->resources.child_user_cpu_ns +
                            outcome->resources.child_sys_cpu_ns) /
        1e9;
    record.resource_summary = outcome->resources.Summary();
    RecordSlowQuery(request, outcome.value());
  }
  if (from_cache) {
    metrics_.requests_cached->Increment();
  } else {
    (outcome.ok() ? metrics_.requests_accepted : metrics_.requests_refused)
        ->Increment();
  }
  AppendAuditRecord(std::move(record));

  if (outcome.ok() && !from_cache && trace_ring_.capacity() > 0) {
    obs::introspect::CompletedTrace completed;
    completed.query_id = outcome->trace.query_id();
    completed.dataset = request.dataset;
    completed.program = request.program.name;
    completed.analyst =
        request.analyst.empty() ? "<anonymous>" : request.analyst;
    completed.ok = true;
    // ProcessQuery runs on an admission worker, so this is the stable pool
    // id of the coordinating thread — the lane stage spans render on.
    completed.coordinator_tid = ThreadPool::CurrentWorkerId();
    completed.completed_at = std::chrono::system_clock::now();
    completed.trace = outcome->trace;
    trace_ring_.Push(std::move(completed));
    metrics_.traces_recorded->Increment();
    metrics_.traces_retained->Set(static_cast<double>(trace_ring_.size()));
  }

  if (outcome.ok() && !from_cache && !options_.ledger_path.empty()) {
    // The ledger write is part of accepting the query: failing to persist
    // means a restart could forget the spend, so surface it as an error —
    // the budget *was* charged and the caller must treat the answer as
    // released.
    Status persisted = PersistLedger();
    if (!persisted.ok()) {
      return Status::Internal("query released but ledger persist failed: " +
                              persisted.message());
    }
  }
  return outcome;
}

void GuptService::AuditSvtEvent(const std::string& analyst,
                                const std::string& dataset,
                                const std::string& event,
                                double epsilon_requested,
                                double epsilon_charged,
                                const Status& outcome) {
  AuditRecord record;
  record.analyst = analyst.empty() ? "<anonymous>" : analyst;
  record.dataset = dataset;
  record.program = event;
  record.epsilon_requested = epsilon_requested;
  record.epsilon_charged = epsilon_charged;
  record.accepted = outcome.ok();
  record.status = outcome.ToString();
  AppendAuditRecord(std::move(record));
}

Result<SvtSessionInfo> GuptService::OpenSvtSession(
    const SvtSessionRequest& request) {
  // Fault site: an injected fire refuses the open before anything is
  // validated or charged, like a front-door outage.
  if (failpoints::Eval("service.svt.open") != failpoints::FireAction::kNone) {
    Status injected =
        Status::Internal(failpoints::InjectedMessage("service.svt.open"));
    AuditSvtEvent(request.analyst, request.dataset, "svt:open",
                  request.epsilon, 0.0, injected);
    return injected;
  }
  Result<SvtSessionInfo> opened = svt_sessions_->Open(request);
  AuditSvtEvent(request.analyst, request.dataset, "svt:open", request.epsilon,
                opened.ok() ? opened->epsilon : 0.0, opened.status());
  if (!opened.ok()) return opened;
  if (!options_.ledger_path.empty()) {
    // Same contract as the one-shot path: the charge is only durable once
    // the ledger write lands, and the charge was irrevocably taken.
    Status persisted = PersistLedger();
    if (!persisted.ok()) {
      return Status::Internal(
          "svt session opened but ledger persist failed: " +
          persisted.message());
    }
  }
  return opened;
}

Result<SvtQueryResult> GuptService::SvtQuery(
    const std::string& session_id, const SvtCandidateQuery& candidate) {
  // Per-query auditing is deliberately absent: a session answers
  // unboundedly many queries, so the audit log records session lifecycle
  // events and gupt_svt_* metrics count the stream.
  return svt_sessions_->Query(session_id, candidate);
}

Result<SvtBatchResult> GuptService::SvtQueryBatch(
    const std::string& session_id,
    const std::vector<SvtCandidateQuery>& candidates) {
  return svt_sessions_->QueryBatch(session_id, candidates);
}

Status GuptService::CloseSvtSession(const std::string& session_id) {
  if (failpoints::Eval("service.svt.close") !=
      failpoints::FireAction::kNone) {
    // The session stays live: close is retryable and the charge already
    // happened at open, so a failed close moves no budget.
    return Status::Internal(
        failpoints::InjectedMessage("service.svt.close"));
  }
  Status closed = svt_sessions_->Close(session_id);
  AuditSvtEvent("<operator>", session_id, "svt:close", 0.0, 0.0, closed);
  return closed;
}

std::vector<SvtSessionInfo> GuptService::SvtSessions() const {
  return svt_sessions_->Sessions();
}

}  // namespace gupt
