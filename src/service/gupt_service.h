// GuptService: the hosted deployment of Figure 2.
//
// Binds together everything a service provider runs: the dataset manager
// (data-owner API), the program registry (vetted computations), the GUPT
// runtime (analyst API), a durable budget ledger, and an audit log of
// every query attempt — accepted or refused — because a DP deployment
// must be able to show, after the fact, exactly where each dataset's
// budget went.
//
// The analyst front door is asynchronous: SubmitQueryAsync places the
// request on a bounded admission queue served by a dedicated worker pool
// and returns a future; SubmitQuery is submit-and-wait over the same
// queue. When the queue is full the service refuses immediately
// (StatusCode::kUnavailable) instead of blocking — backpressure is the
// caller's signal to retry later.

#ifndef GUPT_SERVICE_GUPT_SERVICE_H_
#define GUPT_SERVICE_GUPT_SERVICE_H_

#include <atomic>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/gupt.h"
#include "data/dataset_manager.h"
#include "dp/amplification.h"
#include "exec/chamber_pool.h"
#include "obs/introspect/http_server.h"
#include "obs/introspect/trace_ring.h"
#include "obs/prof/slow_query_log.h"
#include "obs/series/alerts.h"
#include "obs/series/collector.h"
#include "obs/series/time_series.h"
#include "service/program_registry.h"
#include "service/svt_session.h"

namespace gupt {

struct ServiceOptions {
  GuptOptions runtime;
  /// When non-empty, the budget ledger is loaded from this path at startup
  /// (if the file exists) and saved after every accepted query.
  std::string ledger_path;
  /// Answer repeated *identical* queries from a cache at zero additional
  /// budget. Sound because datasets are immutable and re-releasing the
  /// same value reveals nothing new (post-processing); it stretches the
  /// budget exactly as PINQ's caching does. Cache hits are audit-logged
  /// with epsilon_charged = 0.
  bool enable_query_cache = false;
  /// Upper bound on cached releases; least-recently-used entries are
  /// evicted beyond it (gupt_service_cache_evictions_total counts them).
  /// 0 = unbounded.
  std::size_t query_cache_capacity = 1024;
  /// Upper bound on in-memory audit records (ring-buffer semantics: the
  /// oldest entries rotate out). 0 = unbounded. The monotonically
  /// increasing record ids and gupt_service_audit_records_total reveal
  /// how many records ever existed, so rotation is detectable.
  std::size_t audit_log_capacity = 0;
  /// Pre-warmed chamber-pool workers for per-block program execution.
  /// When > 0 the service forks that many worker processes ONCE at
  /// construction (before any service thread exists) and every registry
  /// program runs on a leased worker instead of paying a fork per block;
  /// crashed workers fall back exactly like crashed ProcessChamber
  /// children and are respawned. 0 keeps the fork-per-block /
  /// in-thread chamber paths.
  std::size_t chamber_pool_workers = 0;
  /// Worker threads serving the admission queue. These are distinct from
  /// the runtime's block-execution workers: an admission worker *waits*
  /// on block fan-outs, so sharing one pool would deadlock.
  std::size_t admission_workers = 2;
  /// Bound on queries admitted but not yet answered (queued + running).
  /// Submissions beyond it are refused with StatusCode::kUnavailable.
  std::size_t admission_queue_capacity = 256;
  /// Port for the embedded introspection HTTP server (/metrics, /varz,
  /// /healthz, /budgetz, /tracez). -1 disables it; 0 binds an ephemeral
  /// port (read back with introspect_port()). Loopback-only.
  int introspect_port = -1;
  /// Handler threads for the introspection server.
  std::size_t introspect_handler_threads = 2;
  /// Completed query traces retained for /tracez (oldest rotate out).
  /// 0 disables trace retention.
  std::size_t trace_ring_capacity = 128;
  /// Upper bound on concurrently live SVT sessions; opens beyond it are
  /// refused with kUnavailable and nothing charged. 0 = unbounded.
  std::size_t svt_session_capacity = 64;
  /// SVT sessions idle longer than this are evicted (their session charge,
  /// being irrevocable, is NOT refunded). 0 disables idle eviction.
  std::size_t svt_idle_timeout_ms = 0;
  /// The K worst-by-wall-time queries retained for /slowz (the worst ever
  /// seen, not the most recent). 0 disables the slow-query log.
  std::size_t slow_query_log_capacity = 16;
  /// Queries faster than this never enter the slow-query log (0 = every
  /// completed query competes for a slot).
  double slow_query_threshold_seconds = 0.0;
  /// Upper bound on one /profilez capture (`?seconds=` is clamped to it);
  /// the handler thread is occupied for the whole capture.
  double profilez_max_seconds = 30.0;
  /// Ring capacity (points per series) for the /timeseriesz history. 0
  /// disables the whole series subsystem: no collector, no forecasts, no
  /// alert engine.
  std::size_t series_capacity = 512;
  /// Sampling cadence of the background SeriesCollector. > 0 starts the
  /// collector thread at construction (stopped before the admission queue
  /// drains at destruction); 0 keeps the subsystem armed but tick-on-
  /// demand only (tests drive series_collector()->TickNow()).
  std::int64_t collector_period_ms = 1000;
  /// Sliding window for burn-rate forecasts, alert aggregation, and the
  /// /healthz chamber-pool degradation check.
  std::int64_t series_window_ms = 60000;
  /// The built-in budget_exhaustion_imminent alert fires when any
  /// dataset's forecasted time-to-exhaustion is at or below this horizon.
  double budget_alert_horizon_seconds = 600.0;
  /// Default amplification-by-sampling charging mode for analyst queries
  /// (dp/amplification.h); a request may override it. kOff keeps the
  /// historical ledger behaviour bit-for-bit. Any non-off mode changes
  /// the mechanism: queries run on a Bernoulli subsample, so a default
  /// amplification_rate (or per-request override) is required too.
  dp::AmplificationMode amplification = dp::AmplificationMode::kOff;
  /// Default Bernoulli rate of the amplification subsample, in (0, 1];
  /// forwarded to QuerySpec::amplification_rate when a query resolves to
  /// a non-off mode and the request carries no rate of its own.
  std::optional<double> amplification_rate;
};

/// One analyst query, expressed entirely in data (no code crosses the
/// service boundary; programs are referenced by registry name).
struct QueryRequest {
  /// Who is asking — recorded in the audit log.
  std::string analyst;
  /// Which registered dataset to query.
  std::string dataset;
  /// Which vetted program to run, with parameters.
  ProgramSpec program;

  /// Exactly one of the two must be set.
  std::optional<double> epsilon;
  std::optional<AccuracyGoal> accuracy_goal;

  /// Output-range declaration. The service API supports tight and loose
  /// modes (helper mode needs a code-level translator, which only the
  /// library API can express).
  RangeMode range_mode = RangeMode::kTight;
  std::vector<Range> output_ranges;

  std::optional<std::size_t> block_size;
  bool optimize_block_size = false;
  std::size_t gamma = 1;
  std::size_t records_per_user = 1;
  /// Per-request amplification mode; unset inherits the service default
  /// (ServiceOptions::amplification).
  std::optional<dp::AmplificationMode> amplification;
  /// Per-request Bernoulli subsample rate; unset inherits the service
  /// default (ServiceOptions::amplification_rate). Required (here or as
  /// the service default) whenever the resolved mode is not off.
  std::optional<double> amplification_rate;
};

/// Audit-log entry for one query attempt.
struct AuditRecord {
  std::size_t id = 0;
  std::string analyst;
  std::string dataset;
  std::string program;
  double epsilon_requested = 0.0;  // 0 when goal-driven
  double epsilon_charged = 0.0;    // 0 when refused or cache-served
  /// Amplification-by-sampling facts of the execution ("off" when the
  /// historical charging path ran; rate/raw are 0 when refused or
  /// cache-served).
  std::string amplification = "off";
  double sampling_rate = 0.0;
  double epsilon_raw = 0.0;
  bool accepted = false;
  bool from_cache = false;
  std::string status;  // Status::ToString() of the outcome
  /// One-line pipeline trace (stage timings + DP gauges) of the execution
  /// that produced this answer; empty when refused or cache-served.
  std::string trace_summary;
  /// Coordinator-thread CPU over the pipeline walk (0 when refused or
  /// cache-served). Sums the per-stage cpu_ns of the trace within clock
  /// granularity — the /tracez, /slowz and audit views agree by
  /// construction, all three being copies of the same ledger.
  double cpu_seconds = 0.0;
  /// Summed process-chamber child CPU (0 for in-thread chambers).
  double child_cpu_seconds = 0.0;
  /// One-line resource ledger (obs::prof::ResourceLedger::Summary());
  /// empty when refused or cache-served.
  std::string resource_summary;
};

/// Export format for DumpMetrics.
enum class MetricsFormat { kPrometheus, kJson };

class GuptService {
 public:
  /// The registry is taken by value (the service owns its vetted set).
  GuptService(ServiceOptions options, ProgramRegistry registry);

  /// Not movable: the runtime holds a pointer to the member dataset
  /// manager, so the object must stay put.
  GuptService(const GuptService&) = delete;
  GuptService& operator=(const GuptService&) = delete;

  /// Drains the admission queue (every returned future completes).
  ~GuptService();

  // --- data-owner API ------------------------------------------------------
  Status RegisterDataset(const std::string& name, Dataset data,
                         DatasetOptions dataset_options);

  /// Remaining budget for a dataset.
  Result<double> RemainingBudget(const std::string& name) const;

  // --- analyst API ---------------------------------------------------------
  /// Validates, executes and audits one query (submit-and-wait over the
  /// admission queue; refuses with kUnavailable when the queue is full).
  Result<QueryReport> SubmitQuery(const QueryRequest& request);

  /// Enqueues one query on the bounded admission queue. The future always
  /// completes: with the report, the refusal, or — when the queue is full
  /// — an immediate StatusCode::kUnavailable (audited, counted by
  /// gupt_service_admission_rejected_total, never blocking).
  std::future<Result<QueryReport>> SubmitQueryAsync(
      const QueryRequest& request);

  // --- interactive (SVT) analyst API ---------------------------------------
  /// Opens a threshold-monitoring session: charges epsilon once to the
  /// dataset's accountant (irrevocable), persists the ledger, audits the
  /// open, and returns the session handle. Refusals charge nothing.
  Result<SvtSessionInfo> OpenSvtSession(const SvtSessionRequest& request);

  /// Answers one candidate query ("is count(dim in [lo,hi]) above tau?")
  /// against a live session. Below-threshold answers cost no budget; the
  /// session auto-closes after its last ABOVE answer.
  Result<SvtQueryResult> SvtQuery(const std::string& session_id,
                                  const SvtCandidateQuery& candidate);

  /// Batch / top-k form: answers candidates in order until the list ends
  /// or the session exhausts its positives. Rank ABOVE items by `gap`.
  Result<SvtBatchResult> SvtQueryBatch(
      const std::string& session_id,
      const std::vector<SvtCandidateQuery>& candidates);

  /// Closes a session explicitly (audited). The session charge stays.
  Status CloseSvtSession(const std::string& session_id);

  /// Live SVT sessions, as served by /svtz.
  std::vector<SvtSessionInfo> SvtSessions() const;

  /// Names of programs analysts may request.
  std::vector<std::string> ListPrograms() const;

  /// Registered dataset names.
  std::vector<std::string> ListDatasets() const;

  // --- operator API --------------------------------------------------------
  /// Copy of the retained audit log, in submission order. With a bounded
  /// `audit_log_capacity` the oldest records may have rotated out; ids
  /// stay monotone so gaps at the front are evident.
  std::vector<AuditRecord> audit_log() const;

  /// Starts the embedded introspection server on `port` (0 = ephemeral)
  /// and returns the bound port. Called automatically at construction when
  /// options.introspect_port >= 0. Errors if already serving or the port
  /// cannot be bound.
  Result<int> StartIntrospection(int port);

  /// Stops the introspection server (idempotent; also runs at destruction
  /// before the admission pool drains, so no scrape can observe a
  /// half-destroyed service).
  void StopIntrospection();

  /// The introspection server's bound port, or -1 when not serving.
  int introspect_port() const;

  /// Readiness: true when the service can accept a query right now —
  /// admission queue not full and the admission pool alive. On false,
  /// *reason (if non-null) says which check failed. Served as /healthz.
  bool Healthy(std::string* reason = nullptr) const;

  /// Soft-failure check: true while the service still answers queries but
  /// something an operator must look at is wrong — the chamber pool stuck
  /// in a respawn storm (every lease falling back to fork) or a critical
  /// alert firing. /healthz stays 200 but reports "degraded: ..." so
  /// load-balancers keep routing while pagers fire.
  bool Degraded(std::string* reason = nullptr) const;

  /// The /timeseriesz backing store; null when series_capacity == 0.
  const obs::series::SeriesStore* series_store() const {
    return series_store_.get();
  }

  /// The sampling collector; null when series_capacity == 0. Non-const so
  /// tests can drive deterministic ticks via TickNow().
  obs::series::SeriesCollector* series_collector() {
    return collector_.get();
  }

  /// The alert engine behind /alertz; null when series_capacity == 0.
  const obs::series::AlertRuleEngine* alert_engine() const {
    return alert_engine_.get();
  }

  /// Mutable engine for installing custom rules on top of the built-ins
  /// (embedders, bench harnesses); null when series_capacity == 0.
  /// AddRule is safe against concurrent collector evaluation passes.
  obs::series::AlertRuleEngine* mutable_alert_engine() {
    return alert_engine_.get();
  }

  /// The /tracez retention ring (exposed for tests and embedders).
  const obs::introspect::TraceRing& trace_ring() const { return trace_ring_; }

  /// The /slowz slow-query log (exposed for tests and embedders); null
  /// when slow_query_log_capacity is 0.
  const obs::prof::SlowQueryLog* slow_query_log() const {
    return slow_query_log_.get();
  }

  /// Per-dataset budget ledgers, as served by /budgetz.
  std::vector<DatasetBudgetSnapshot> BudgetSnapshots() const {
    return manager_.BudgetSnapshots();
  }

  /// Running amplification aggregates for one dataset, as served inside
  /// /budgetz: how many queries were charged under amplification, the raw
  /// epsilon their noise was calibrated at, and the amplified epsilon'
  /// actually debited. epsilon_saved() is the ledger's gain.
  struct AmplificationStats {
    std::size_t queries = 0;
    double epsilon_raw = 0.0;
    double epsilon_charged = 0.0;
    double epsilon_saved() const { return epsilon_raw - epsilon_charged; }
  };

  /// Snapshot of the amplification aggregates for `dataset` (zeroes when
  /// no amplified query has run against it).
  AmplificationStats AmplificationTotals(const std::string& dataset) const;

  /// Dump of the process-global metrics registry (counters, gauges, and
  /// histograms from every layer: runtime, chambers, thread pool, service).
  static std::string DumpMetrics(MetricsFormat format);

  /// Loads a previously saved ledger (call after re-registering the same
  /// datasets, before serving queries). Done automatically at construction
  /// when `ledger_path` exists — but registration happens after
  /// construction, so a restarting operator calls this explicitly.
  Status RestoreLedger();

  /// Persists the ledger now (also happens after every accepted query when
  /// ledger_path is set).
  Status PersistLedger() const;

 private:
  Result<QueryReport> Execute(const QueryRequest& request);

  /// Registers the endpoint handlers on a not-yet-started server.
  void InstallIntrospectionHandlers(obs::introspect::HttpServer* server);

  /// /budgetz bodies.
  std::string BudgetzJson() const;
  std::string BudgetzText() const;

  /// /svtz bodies.
  std::string SvtzJson() const;
  std::string SvtzText() const;

  /// /slowz bodies.
  std::string SlowzJson() const;
  std::string SlowzText() const;

  /// /healthz body (status line, then diagnostics when verbose).
  std::string HealthzBody(bool healthy, const std::string& reason,
                          bool verbose) const;

  /// True when chamber-pool respawns kept pace with leases over the last
  /// series window (every lease is falling back to fork-per-block).
  bool PoolRespawnStorm(std::string* detail) const;

  /// Ledger totals for the series collector's budget_source hook.
  std::vector<obs::series::BudgetStat> BudgetStatsForSeries() const;

  /// /profilez: arms the sampling profiler for the requested capture
  /// window on the handler thread and returns the folded stacks.
  obs::introspect::HttpResponse HandleProfilez(
      const obs::introspect::HttpRequest& request);

  /// Offers one completed query to the slow-query log.
  void RecordSlowQuery(const QueryRequest& request, const QueryReport& report);

  /// Appends an audit record for an SVT session event (open/close).
  void AuditSvtEvent(const std::string& analyst, const std::string& dataset,
                     const std::string& event, double epsilon_requested,
                     double epsilon_charged, const Status& outcome);

  /// The synchronous body an admission worker runs: cache lookup, pipeline
  /// execution, audit, ledger persist.
  Result<QueryReport> ProcessQuery(const QueryRequest& request);

  /// Appends one audit record (assigning its id) under audit_mu_,
  /// rotating the oldest record out when the log is at capacity.
  void AppendAuditRecord(AuditRecord record);

  /// Records a queue-full refusal in the audit log.
  void AuditAdmissionRefusal(const QueryRequest& request,
                             const Status& refusal);

  /// Canonical cache key for a request; empty when the request is not
  /// cacheable (goal-driven queries re-solve epsilon from aged data, so
  /// they are executed fresh each time). Non-static: the key folds in the
  /// resolved amplification mode, whose default is a service option.
  std::string CacheKey(const QueryRequest& request) const;

  /// Cache lookup; refreshes the entry's LRU position on a hit.
  std::optional<QueryReport> CacheLookup(const std::string& key);

  /// Inserts a release into the cache, evicting the least-recently-used
  /// entry beyond the configured capacity.
  void CacheInsert(const std::string& key, const QueryReport& report);

  ServiceOptions options_;
  ProgramRegistry registry_;
  DatasetManager manager_;

  /// Pre-warmed chamber pool (null when chamber_pool_workers == 0).
  /// Declared before runtime_, which holds a non-owning pointer to it.
  std::unique_ptr<ChamberPool> chamber_pool_;
  std::unique_ptr<GuptRuntime> runtime_;

  mutable std::mutex audit_mu_;
  std::deque<AuditRecord> audit_log_;
  std::size_t audit_next_id_ = 0;

  /// Per-dataset amplification aggregates (see AmplificationTotals).
  mutable std::mutex amplification_mu_;
  std::map<std::string, AmplificationStats> amplification_stats_;

  /// LRU cache: `cache_lru_` is ordered most- to least-recently used and
  /// each map entry holds its own position in that list.
  struct CacheEntry {
    QueryReport report;
    std::list<std::string>::iterator lru_position;
  };
  std::mutex cache_mu_;
  std::list<std::string> cache_lru_;
  std::map<std::string, CacheEntry> query_cache_;

  /// Queries admitted but not yet answered (queued + running).
  std::atomic<std::size_t> admission_in_flight_{0};

  /// Observability handles (process-global registry).
  struct Metrics {
    obs::Counter* requests_accepted;
    obs::Counter* requests_refused;
    obs::Counter* requests_cached;
    obs::Counter* admission_rejected;
    obs::Gauge* admission_queue_depth;
    obs::Counter* cache_evictions;
    obs::Counter* audit_records;
    obs::Counter* traces_recorded;
    obs::Gauge* traces_retained;
    obs::Counter* profile_requests_ok;
    obs::Counter* profile_requests_busy;
    obs::Counter* profile_requests_error;
    obs::Counter* samples_recorded;
    obs::Counter* samples_dropped;
    obs::Counter* slow_queries;
  };
  Metrics metrics_;

  /// The K worst queries by wall time, served at /slowz. Null when
  /// disabled. Declared before admission_pool_: workers record into it.
  std::unique_ptr<obs::prof::SlowQueryLog> slow_query_log_;

  /// Cooperative cancel for an in-flight /profilez capture: the handler
  /// sleeps in short chunks and re-checks, so StopIntrospection (which
  /// joins handler threads) is never held for the full capture window.
  std::atomic<bool> profilez_cancel_{false};

  /// Completed traces retained for /tracez.
  obs::introspect::TraceRing trace_ring_;

  /// Live SVT sessions. Declared after trace_ring_ (sessions push their
  /// traces there on close) so the ring outlives the registry.
  std::unique_ptr<SvtSessionRegistry> svt_sessions_;

  /// Time-series subsystem (all null when series_capacity == 0). The
  /// collector references the store, the engine and the dataset manager,
  /// so it is declared after them (destroyed first) and its thread is
  /// additionally stopped explicitly in the destructor before the
  /// admission queue drains.
  std::unique_ptr<obs::series::SeriesStore> series_store_;
  std::unique_ptr<obs::series::AlertRuleEngine> alert_engine_;
  std::unique_ptr<obs::series::SeriesCollector> collector_;

  mutable std::mutex introspect_mu_;

  /// Declared after everything its draining workers touch, so those
  /// members are still alive while the queue empties.
  std::unique_ptr<ThreadPool> admission_pool_;

  /// Declared last of all so the server is destroyed (stopped) first:
  /// in-flight scrapes read every member above. The destructor stops it
  /// explicitly before draining the admission pool anyway.
  std::unique_ptr<obs::introspect::HttpServer> introspect_;
};

}  // namespace gupt

#endif  // GUPT_SERVICE_GUPT_SERVICE_H_
