// GuptService: the hosted deployment of Figure 2.
//
// Binds together everything a service provider runs: the dataset manager
// (data-owner API), the program registry (vetted computations), the GUPT
// runtime (analyst API), a durable budget ledger, and an audit log of
// every query attempt — accepted or refused — because a DP deployment
// must be able to show, after the fact, exactly where each dataset's
// budget went.

#ifndef GUPT_SERVICE_GUPT_SERVICE_H_
#define GUPT_SERVICE_GUPT_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/gupt.h"
#include "data/dataset_manager.h"
#include "service/program_registry.h"

namespace gupt {

struct ServiceOptions {
  GuptOptions runtime;
  /// When non-empty, the budget ledger is loaded from this path at startup
  /// (if the file exists) and saved after every accepted query.
  std::string ledger_path;
  /// Answer repeated *identical* queries from a cache at zero additional
  /// budget. Sound because datasets are immutable and re-releasing the
  /// same value reveals nothing new (post-processing); it stretches the
  /// budget exactly as PINQ's caching does. Cache hits are audit-logged
  /// with epsilon_charged = 0.
  bool enable_query_cache = false;
};

/// One analyst query, expressed entirely in data (no code crosses the
/// service boundary; programs are referenced by registry name).
struct QueryRequest {
  /// Who is asking — recorded in the audit log.
  std::string analyst;
  /// Which registered dataset to query.
  std::string dataset;
  /// Which vetted program to run, with parameters.
  ProgramSpec program;

  /// Exactly one of the two must be set.
  std::optional<double> epsilon;
  std::optional<AccuracyGoal> accuracy_goal;

  /// Output-range declaration. The service API supports tight and loose
  /// modes (helper mode needs a code-level translator, which only the
  /// library API can express).
  RangeMode range_mode = RangeMode::kTight;
  std::vector<Range> output_ranges;

  std::optional<std::size_t> block_size;
  bool optimize_block_size = false;
  std::size_t gamma = 1;
  std::size_t records_per_user = 1;
};

/// Audit-log entry for one query attempt.
struct AuditRecord {
  std::size_t id = 0;
  std::string analyst;
  std::string dataset;
  std::string program;
  double epsilon_requested = 0.0;  // 0 when goal-driven
  double epsilon_charged = 0.0;    // 0 when refused or cache-served
  bool accepted = false;
  bool from_cache = false;
  std::string status;  // Status::ToString() of the outcome
  /// One-line pipeline trace (stage timings + DP gauges) of the execution
  /// that produced this answer; empty when refused or cache-served.
  std::string trace_summary;
};

/// Export format for DumpMetrics.
enum class MetricsFormat { kPrometheus, kJson };

class GuptService {
 public:
  /// The registry is taken by value (the service owns its vetted set).
  GuptService(ServiceOptions options, ProgramRegistry registry);

  /// Not movable: the runtime holds a pointer to the member dataset
  /// manager, so the object must stay put.
  GuptService(const GuptService&) = delete;
  GuptService& operator=(const GuptService&) = delete;

  // --- data-owner API ------------------------------------------------------
  Status RegisterDataset(const std::string& name, Dataset data,
                         DatasetOptions dataset_options);

  /// Remaining budget for a dataset.
  Result<double> RemainingBudget(const std::string& name) const;

  // --- analyst API ---------------------------------------------------------
  /// Validates, executes and audits one query.
  Result<QueryReport> SubmitQuery(const QueryRequest& request);

  /// Names of programs analysts may request.
  std::vector<std::string> ListPrograms() const;

  /// Registered dataset names.
  std::vector<std::string> ListDatasets() const;

  // --- operator API --------------------------------------------------------
  /// Copy of the audit log, in submission order.
  std::vector<AuditRecord> audit_log() const;

  /// Dump of the process-global metrics registry (counters, gauges, and
  /// histograms from every layer: runtime, chambers, thread pool, service).
  static std::string DumpMetrics(MetricsFormat format);

  /// Loads a previously saved ledger (call after re-registering the same
  /// datasets, before serving queries). Done automatically at construction
  /// when `ledger_path` exists — but registration happens after
  /// construction, so a restarting operator calls this explicitly.
  Status RestoreLedger();

  /// Persists the ledger now (also happens after every accepted query when
  /// ledger_path is set).
  Status PersistLedger() const;

 private:
  Result<QueryReport> Execute(const QueryRequest& request);

  /// Canonical cache key for a request; empty when the request is not
  /// cacheable (goal-driven queries re-solve epsilon from aged data, so
  /// they are executed fresh each time).
  static std::string CacheKey(const QueryRequest& request);

  ServiceOptions options_;
  ProgramRegistry registry_;
  DatasetManager manager_;
  std::unique_ptr<GuptRuntime> runtime_;
  mutable std::mutex audit_mu_;
  std::vector<AuditRecord> audit_log_;
  std::mutex cache_mu_;
  std::map<std::string, QueryReport> query_cache_;

  /// Observability handles (process-global registry).
  struct Metrics {
    obs::Counter* requests_accepted;
    obs::Counter* requests_refused;
    obs::Counter* requests_cached;
  };
  Metrics metrics_;
};

}  // namespace gupt

#endif  // GUPT_SERVICE_GUPT_SERVICE_H_
