#include "service/svt_session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

/// SVT sessions fork their noise streams from a dedicated stream band so
/// the one-shot query path (stream 0 and the per-block forks) and SVT
/// sessions never share a stream for one seed.
constexpr std::uint64_t kSvtRngStreamBase = 0x5774'0000;

Status ValidateRequest(const SvtSessionRequest& request) {
  if (request.analyst.empty()) {
    return Status::InvalidArgument("svt open: analyst must be non-empty");
  }
  if (request.dataset.empty()) {
    return Status::InvalidArgument("svt open: dataset must be non-empty");
  }
  if (!std::isfinite(request.threshold)) {
    return Status::InvalidArgument("svt open: threshold must be finite");
  }
  if (!(request.epsilon > 0.0) || !std::isfinite(request.epsilon)) {
    return Status::InvalidArgument("svt open: epsilon must be positive");
  }
  if (request.max_positives == 0) {
    return Status::InvalidArgument("svt open: max_positives must be >= 1");
  }
  if (request.records_per_user == 0) {
    return Status::InvalidArgument(
        "svt open: records_per_user must be >= 1");
  }
  return Status::OK();
}

std::int64_t NowNanos() {
  return obs::NanosSinceTraceEpoch(std::chrono::steady_clock::now());
}

}  // namespace

SvtSessionRegistry::SvtSessionRegistry(SvtRegistryOptions options,
                                       DatasetManager* manager,
                                       obs::introspect::TraceRing* trace_ring,
                                       std::uint64_t seed)
    : options_(options),
      manager_(manager),
      trace_ring_(trace_ring),
      seed_(seed) {
  auto& registry = obs::MetricsRegistry::Get();
  metrics_.opened = registry.GetCounter("gupt_svt_sessions_opened_total",
                                        "SVT sessions opened");
  metrics_.open_refused =
      registry.GetCounter("gupt_svt_sessions_refused_total",
                          "SVT session opens refused (capacity, validation, "
                          "budget); nothing was charged");
  metrics_.closed_explicit = registry.GetCounter(
      "gupt_svt_sessions_closed_total", "SVT sessions closed, by reason",
      {{"reason", "explicit"}});
  metrics_.closed_idle = registry.GetCounter(
      "gupt_svt_sessions_closed_total", "SVT sessions closed, by reason",
      {{"reason", "idle"}});
  metrics_.closed_exhausted = registry.GetCounter(
      "gupt_svt_sessions_closed_total", "SVT sessions closed, by reason",
      {{"reason", "exhausted"}});
  metrics_.active = registry.GetGauge("gupt_svt_sessions_active_count",
                                      "Live SVT sessions");
  metrics_.answered_above = registry.GetCounter(
      "gupt_svt_queries_answered_total", "SVT candidate queries answered",
      {{"verdict", "above"}});
  metrics_.answered_below = registry.GetCounter(
      "gupt_svt_queries_answered_total", "SVT candidate queries answered",
      {{"verdict", "below"}});
  metrics_.queries_refused =
      registry.GetCounter("gupt_svt_queries_refused_total",
                          "SVT candidate queries refused (unknown session, "
                          "exhausted engine, invalid candidate, fault)");
  metrics_.positives = registry.GetCounter("gupt_svt_positives_spent_total",
                                           "ABOVE answers spent across all "
                                           "SVT sessions");
  metrics_.epsilon_charged =
      registry.GetCounter("gupt_svt_epsilon_charged_total",
                          "Total epsilon charged by SVT session opens");
}

Result<SvtSessionInfo> SvtSessionRegistry::Open(
    const SvtSessionRequest& request) {
  Status valid = ValidateRequest(request);
  if (!valid.ok()) {
    metrics_.open_refused->Increment();
    return valid;
  }

  auto lookup = manager_->Get(request.dataset);
  if (!lookup.ok()) {
    metrics_.open_refused->Increment();
    return lookup.status();
  }
  std::shared_ptr<RegisteredDataset> dataset = std::move(lookup).value();

  dp::SvtConfig config = dp::SvtConfig::EvenSplit(
      request.epsilon, request.threshold, request.max_positives,
      static_cast<double>(request.records_per_user));

  std::lock_guard<std::mutex> lock(mu_);
  SweepIdleLocked();

  if (options_.capacity != 0 && sessions_.size() >= options_.capacity) {
    metrics_.open_refused->Increment();
    return Status::Unavailable("svt session registry at capacity (" +
                               std::to_string(options_.capacity) +
                               " live sessions); close one and retry");
  }

  const std::uint64_t number = next_session_number_;
  const std::string session_id = "svt-" + std::to_string(number + 1);

  // The charge failpoint sits BEFORE the accountant debit: a fault here
  // refuses the open with nothing charged, so the ledger-invariance fault
  // tests can pin "fired => no ledger movement".
  Status charge_fault = [&]() -> Status {
    GUPT_FAILPOINT_STATUS("service.svt.charge");
    return Status::OK();
  }();
  if (!charge_fault.ok()) {
    metrics_.open_refused->Increment();
    return charge_fault;
  }

  // Irrevocable §6.2-style charge: once this debit lands, no session
  // outcome — crash, idle eviction, zero queries — refunds it.
  GUPT_RETURN_IF_ERROR(dataset->accountant().Charge(
      config.total_epsilon(), "svt:" + session_id + ":" + request.analyst));
  next_session_number_ = number + 1;
  metrics_.epsilon_charged->Increment(config.total_epsilon());

  auto engine =
      dp::SvtEngine::Create(config, Rng(seed_, kSvtRngStreamBase + number));
  if (!engine.ok()) {
    // Unreachable after EvenSplit validation, but never lose the charge
    // silently: surface the internal error.
    return engine.status();
  }

  auto session = std::make_shared<Session>(std::move(engine).value());
  session->id = session_id;
  session->analyst = request.analyst;
  session->dataset_name = request.dataset;
  session->dataset = std::move(dataset);
  session->opened_at = std::chrono::steady_clock::now();
  session->last_touch_ns.store(NowNanos(), std::memory_order_relaxed);
  session->trace.set_query_id(obs::NextQueryId());
  {
    obs::SpanRecord open_span;
    open_span.name = "svt_open";
    open_span.start_ns = NowNanos();
    open_span.note = "epsilon=" + std::to_string(config.total_epsilon()) +
                     " c=" + std::to_string(config.max_positives);
    session->trace.AddSpan(std::move(open_span));
  }
  session->trace.SetGauge("epsilon_charged", config.total_epsilon());
  session->trace.SetGauge("svt_threshold", config.threshold);
  session->trace.SetGauge("svt_max_positives",
                          static_cast<double>(config.max_positives));

  SvtSessionInfo info = InfoLocked(*session);
  sessions_.emplace(session_id, std::move(session));
  metrics_.opened->Increment();
  metrics_.active->Set(static_cast<double>(sessions_.size()));
  return info;
}

Result<double> SvtSessionRegistry::EvaluateCount(
    const RegisteredDataset& dataset, const SvtCandidateQuery& candidate) {
  if (candidate.dim >= dataset.data().num_dims()) {
    return Status::InvalidArgument(
        "svt candidate dim " + std::to_string(candidate.dim) +
        " out of range (dataset has " +
        std::to_string(dataset.data().num_dims()) + " dims)");
  }
  if (std::isnan(candidate.lo) || std::isnan(candidate.hi)) {
    return Status::InvalidArgument("svt candidate bounds must not be NaN");
  }
  if (candidate.lo > candidate.hi) {
    return Status::InvalidArgument("svt candidate has lo > hi");
  }
  double count = 0.0;
  const double* column = dataset.data().col(candidate.dim);
  const std::size_t n = dataset.data().num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    const double x = column[r];
    if (x >= candidate.lo && x <= candidate.hi) count += 1.0;
  }
  return count;
}

Result<SvtQueryResult> SvtSessionRegistry::QueryOne(
    Session& session, const SvtCandidateQuery& candidate) {
  GUPT_FAILPOINT_STATUS("service.svt.query");
  GUPT_ASSIGN_OR_RETURN(double count,
                        EvaluateCount(*session.dataset, candidate));
  GUPT_ASSIGN_OR_RETURN(dp::SvtAnswer answer, session.engine.Process(count));
  session.last_touch_ns.store(NowNanos(), std::memory_order_relaxed);

  SvtQueryResult result;
  result.verdict = answer.verdict;
  result.gap = answer.gap;
  result.positives_spent = session.engine.positives_spent();
  result.remaining_positives = session.engine.remaining_positives();
  result.queries_answered = session.engine.queries_answered();
  result.exhausted = session.engine.exhausted();
  if (answer.verdict == dp::SvtVerdict::kAbove) {
    metrics_.answered_above->Increment();
    metrics_.positives->Increment();
    // Positives are rare (at most c per session) so each one earns a span;
    // the unbounded stream of negatives is summarised by gauges at close.
    obs::SpanRecord span;
    span.name = "svt_positive";
    span.start_ns = NowNanos();
    span.note = "gap=" + std::to_string(answer.gap) + " spent=" +
                std::to_string(session.engine.positives_spent());
    session.trace.AddSpan(std::move(span));
  } else {
    metrics_.answered_below->Increment();
  }
  return result;
}

Result<SvtQueryResult> SvtSessionRegistry::Query(
    const std::string& session_id, const SvtCandidateQuery& candidate) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SweepIdleLocked();
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      metrics_.queries_refused->Increment();
      return Status::NotFound("svt session '" + session_id +
                              "' not found (closed, evicted, or never "
                              "opened)");
    }
    session = it->second;
  }

  Result<SvtQueryResult> result = [&]() {
    std::lock_guard<std::mutex> lock(session->mu);
    return QueryOne(*session, candidate);
  }();
  if (!result.ok()) {
    metrics_.queries_refused->Increment();
    return result;
  }
  if (result->exhausted) CloseInternal(session_id, "exhausted");
  return result;
}

Result<SvtBatchResult> SvtSessionRegistry::QueryBatch(
    const std::string& session_id,
    const std::vector<SvtCandidateQuery>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("svt batch: no candidates supplied");
  }
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SweepIdleLocked();
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      metrics_.queries_refused->Increment();
      return Status::NotFound("svt session '" + session_id + "' not found");
    }
    session = it->second;
  }

  SvtBatchResult batch;
  bool exhausted = false;
  Status error = Status::OK();
  {
    std::lock_guard<std::mutex> lock(session->mu);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      Result<SvtQueryResult> one = QueryOne(*session, candidates[i]);
      if (!one.ok()) {
        error = one.status();
        break;
      }
      SvtBatchItem item;
      item.index = i;
      item.label = candidates[i].label;
      item.verdict = one->verdict;
      item.gap = one->gap;
      batch.items.push_back(std::move(item));
      if (one->exhausted) {
        exhausted = true;
        batch.exhausted_midway = i + 1 < candidates.size();
        break;
      }
    }
    batch.remaining_positives = session->engine.remaining_positives();
  }
  if (!error.ok()) {
    metrics_.queries_refused->Increment();
    return error;
  }
  if (exhausted) CloseInternal(session_id, "exhausted");
  return batch;
}

Status SvtSessionRegistry::Close(const std::string& session_id) {
  return CloseInternal(session_id, "explicit");
}

Status SvtSessionRegistry::CloseInternal(const std::string& session_id,
                                         const std::string& reason) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("svt session '" + session_id + "' not found");
    }
    session = it->second;
    sessions_.erase(it);
    metrics_.active->Set(static_cast<double>(sessions_.size()));
  }
  if (reason == "explicit") {
    metrics_.closed_explicit->Increment();
  } else if (reason == "idle") {
    metrics_.closed_idle->Increment();
  } else {
    metrics_.closed_exhausted->Increment();
  }
  std::lock_guard<std::mutex> lock(session->mu);
  PushTrace(*session, reason);
  return Status::OK();
}

void SvtSessionRegistry::SweepIdleLocked() {
  if (options_.idle_timeout.count() <= 0) return;
  const std::int64_t now = NowNanos();
  const std::int64_t limit =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.idle_timeout)
          .count();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const std::int64_t touched =
        it->second->last_touch_ns.load(std::memory_order_relaxed);
    if (now - touched > limit) {
      std::shared_ptr<Session> session = it->second;
      it = sessions_.erase(it);
      metrics_.closed_idle->Increment();
      std::lock_guard<std::mutex> session_lock(session->mu);
      PushTrace(*session, "idle");
    } else {
      ++it;
    }
  }
  metrics_.active->Set(static_cast<double>(sessions_.size()));
}

void SvtSessionRegistry::PushTrace(Session& session,
                                   const std::string& reason) {
  obs::SpanRecord span;
  span.name = "svt_session";
  span.start_ns = obs::NanosSinceTraceEpoch(session.opened_at);
  span.duration = std::chrono::steady_clock::now() - session.opened_at;
  span.note = "close=" + reason;
  session.trace.AddSpan(std::move(span));
  session.trace.SetGauge(
      "svt_queries_answered",
      static_cast<double>(session.engine.queries_answered()));
  session.trace.SetGauge(
      "svt_below_answered",
      static_cast<double>(session.engine.below_answered()));
  session.trace.SetGauge(
      "svt_positives_spent",
      static_cast<double>(session.engine.positives_spent()));

  if (trace_ring_ == nullptr) return;
  obs::introspect::CompletedTrace completed;
  completed.query_id = session.trace.query_id();
  completed.dataset = session.dataset_name;
  completed.program = "svt:session";
  completed.analyst = session.analyst;
  completed.ok = true;
  completed.completed_at = std::chrono::system_clock::now();
  completed.trace = session.trace;
  trace_ring_->Push(std::move(completed));
}

SvtSessionInfo SvtSessionRegistry::InfoLocked(const Session& session) {
  SvtSessionInfo info;
  info.session_id = session.id;
  info.analyst = session.analyst;
  info.dataset = session.dataset_name;
  info.threshold = session.engine.config().threshold;
  info.epsilon = session.engine.config().total_epsilon();
  info.max_positives = session.engine.config().max_positives;
  info.positives_spent = session.engine.positives_spent();
  info.remaining_positives = session.engine.remaining_positives();
  info.queries_answered = session.engine.queries_answered();
  info.below_answered = session.engine.below_answered();
  info.exhausted = session.engine.exhausted();
  info.idle = std::chrono::nanoseconds(
      NowNanos() - session.last_touch_ns.load(std::memory_order_relaxed));
  return info;
}

std::vector<SvtSessionInfo> SvtSessionRegistry::Sessions() const {
  std::vector<SvtSessionInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    std::lock_guard<std::mutex> session_lock(session->mu);
    out.push_back(InfoLocked(*session));
  }
  return out;
}

std::size_t SvtSessionRegistry::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace gupt
