// Named-program registry for the hosted service.
//
// The paper's deployment (Figure 2) has analysts submit computations to a
// service; in a hosted setting the service operator vets and installs the
// runnable programs, and analysts reference them by name with textual
// parameters ("mean of column 0", "k-means with k=4 over columns 0,1").
// The registry maps such requests to ProgramFactory instances. It ships
// with builders for every analytics program in src/analytics; operators
// register additional builders for their own vetted binaries.

#ifndef GUPT_SERVICE_PROGRAM_REGISTRY_H_
#define GUPT_SERVICE_PROGRAM_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/program.h"

namespace gupt {

/// A textual program request: a registered name plus key=value parameters.
struct ProgramSpec {
  std::string name;
  std::map<std::string, std::string> params;
};

/// Parameter accessors with validation, for builder implementations.
namespace spec {

/// Required size_t parameter.
Result<std::size_t> GetSize(const ProgramSpec& spec, const std::string& key);

/// Optional size_t parameter with a default.
Result<std::size_t> GetSizeOr(const ProgramSpec& spec, const std::string& key,
                              std::size_t fallback);

/// Required double parameter.
Result<double> GetDouble(const ProgramSpec& spec, const std::string& key);

/// Optional double parameter with a default.
Result<double> GetDoubleOr(const ProgramSpec& spec, const std::string& key,
                           double fallback);

/// Required comma-separated size_t list (e.g. dims=0,1,2).
Result<std::vector<std::size_t>> GetSizeList(const ProgramSpec& spec,
                                             const std::string& key);

}  // namespace spec

class ProgramRegistry {
 public:
  using Builder = std::function<Result<ProgramFactory>(const ProgramSpec&)>;

  /// Registers a builder under `name`; duplicate names are an error.
  Status RegisterBuilder(const std::string& name, Builder builder);

  /// Builds a factory from a textual request.
  Result<ProgramFactory> Build(const ProgramSpec& spec) const;

  /// Sorted names of all registered programs.
  std::vector<std::string> ListPrograms() const;

  /// A registry preloaded with the standard analytics programs:
  ///   mean, variance, median, quantile(q), iqr, winsorized_mean(trim),
  ///   trimmed_mean(trim), histogram(bins,lo,hi), covariance(dim_a,dim_b),
  ///   kmeans(k,dims,iterations), logistic_regression(dims,label),
  ///   linear_regression(dims,target), pca(dims).
  /// Column selectors default to dim=0 where sensible.
  static ProgramRegistry WithStandardPrograms();

 private:
  std::map<std::string, Builder> builders_;
};

}  // namespace gupt

#endif  // GUPT_SERVICE_PROGRAM_REGISTRY_H_
