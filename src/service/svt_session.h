// Stateful SVT sessions over registered datasets.
//
// The one-shot query path charges its full epsilon per release, which
// caps a dataset's lifetime at a few hundred queries. An SVT session
// inverts the economics for interactive threshold workloads: opening a
// session charges one constant epsilon_session to the dataset's
// accountant — an irrevocable §6.2-style charge, taken before any query
// is answered — and from then on the session streams above/below
// verdicts for unboundedly many below-threshold candidate queries,
// halting only after `max_positives` ABOVE answers (src/dp/svt.h has the
// mechanism and its correctness story).
//
// Candidate queries are interval COUNTS — "how many rows have column
// `dim` in [lo, hi]?" — evaluated exactly by the trusted runtime, never
// by untrusted analyst code. Counting queries are the canonical SVT
// workload precisely because their sensitivity is known a priori: one
// user changes a count by at most records_per_user, which is the Delta
// the session's noise scales are calibrated to. Running a black-box
// program here would void the guarantee (its sensitivity is unknown), so
// the session API deliberately does not accept one.
//
// The registry bounds live-session memory (capacity refusals, idle
// eviction swept lazily on open/query) and narrates each session into
// the shared observability surfaces: gupt_svt_* metrics, a per-session
// trace pushed to /tracez on close, and the /svtz listing served by
// GuptService.

#ifndef GUPT_SERVICE_SVT_SESSION_H_
#define GUPT_SERVICE_SVT_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset_manager.h"
#include "dp/svt.h"
#include "obs/introspect/trace_ring.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gupt {

/// Registry-level knobs (part of ServiceOptions).
struct SvtRegistryOptions {
  /// Upper bound on concurrently live sessions; opens beyond it are
  /// refused with StatusCode::kUnavailable (nothing charged). 0 = unbounded.
  std::size_t capacity = 64;
  /// Sessions idle longer than this are evicted (closed with
  /// reason="idle", their trace pushed) by the lazy sweep that runs on
  /// every open and query. Zero disables idle eviction.
  std::chrono::milliseconds idle_timeout{0};
};

/// What an analyst supplies to open a session.
struct SvtSessionRequest {
  std::string analyst;
  std::string dataset;
  /// Public threshold tau, in row-count units.
  double threshold = 0.0;
  /// Constant session budget epsilon_session, charged once at open and
  /// split evenly between threshold and query noise (dp::SvtConfig::
  /// EvenSplit).
  double epsilon = 0.0;
  /// Maximum ABOVE answers (c) before the session halts.
  std::size_t max_positives = 1;
  /// Per-user contribution bound: the count sensitivity Delta.
  std::size_t records_per_user = 1;
};

/// One candidate query: count of rows with column `dim` in [lo, hi].
struct SvtCandidateQuery {
  std::size_t dim = 0;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  /// Echoed back in batch results (and the CLI table); not interpreted.
  std::string label;
};

/// Answer to one candidate query.
struct SvtQueryResult {
  dp::SvtVerdict verdict = dp::SvtVerdict::kBelow;
  /// Free-gap release, only meaningful when verdict == kAbove.
  double gap = 0.0;
  std::size_t positives_spent = 0;
  std::size_t remaining_positives = 0;
  std::uint64_t queries_answered = 0;
  /// True when this answer spent the session's last positive.
  bool exhausted = false;
};

/// One row of a batch ("which of these candidates exceeds tau") answer.
struct SvtBatchItem {
  std::size_t index = 0;  // position in the submitted candidate list
  std::string label;
  dp::SvtVerdict verdict = dp::SvtVerdict::kBelow;
  double gap = 0.0;
};

/// Batch verdicts, in candidate order. When the session exhausts mid-list
/// the remaining candidates are simply not answered (`exhausted_midway`),
/// mirroring the engine's halting rule.
struct SvtBatchResult {
  std::vector<SvtBatchItem> items;
  bool exhausted_midway = false;
  std::size_t remaining_positives = 0;
};

/// Public view of one live session (/svtz, tests, CLI).
struct SvtSessionInfo {
  std::string session_id;
  std::string analyst;
  std::string dataset;
  double threshold = 0.0;
  double epsilon = 0.0;
  std::size_t max_positives = 0;
  std::size_t positives_spent = 0;
  std::size_t remaining_positives = 0;
  std::uint64_t queries_answered = 0;
  std::uint64_t below_answered = 0;
  bool exhausted = false;
  /// Time since the session last answered (or was opened).
  std::chrono::nanoseconds idle{0};
};

/// Thread-safe registry of live SVT sessions. Owned by GuptService, which
/// layers auditing and ledger persistence on top of these primitives.
class SvtSessionRegistry {
 public:
  /// `manager` and `trace_ring` must outlive the registry. `seed` roots
  /// the per-session noise streams (each session forks stream
  /// kSvtRngStreamBase + n so reruns with one seed are reproducible).
  SvtSessionRegistry(SvtRegistryOptions options, DatasetManager* manager,
                     obs::introspect::TraceRing* trace_ring,
                     std::uint64_t seed);

  SvtSessionRegistry(const SvtSessionRegistry&) = delete;
  SvtSessionRegistry& operator=(const SvtSessionRegistry&) = delete;

  /// Validates, sweeps idle sessions, checks capacity, charges
  /// epsilon_session to the dataset's accountant (irrevocably — the
  /// charge survives any later session outcome), and creates the
  /// session. Refusals charge nothing.
  Result<SvtSessionInfo> Open(const SvtSessionRequest& request);

  /// Answers one candidate query against a live session.
  Result<SvtQueryResult> Query(const std::string& session_id,
                               const SvtCandidateQuery& candidate);

  /// Answers candidates in order until the list ends or the session
  /// exhausts its positives (the top-k / "which exceed tau" form).
  Result<SvtBatchResult> QueryBatch(
      const std::string& session_id,
      const std::vector<SvtCandidateQuery>& candidates);

  /// Closes a session, pushing its trace to the /tracez ring. Sessions
  /// also close themselves when the last positive is spent (reason
  /// "exhausted") and under idle eviction (reason "idle").
  Status Close(const std::string& session_id);

  /// Live sessions, sorted by id (the /svtz body).
  std::vector<SvtSessionInfo> Sessions() const;

  std::size_t active_count() const;

 private:
  struct Session {
    std::mutex mu;
    std::string id;
    std::string analyst;
    std::string dataset_name;
    std::shared_ptr<RegisteredDataset> dataset;
    dp::SvtEngine engine;
    obs::QueryTrace trace;
    std::chrono::steady_clock::time_point opened_at;
    /// Last answer time, in nanoseconds since obs::TraceEpoch(). Atomic so
    /// the idle sweep (registry lock only) can read it while a query
    /// (session lock only) refreshes it.
    std::atomic<std::int64_t> last_touch_ns{0};

    explicit Session(dp::SvtEngine e) : engine(std::move(e)) {}
  };

  /// Exact interval count q(T) for one candidate.
  static Result<double> EvaluateCount(const RegisteredDataset& dataset,
                                      const SvtCandidateQuery& candidate);

  /// One engine step + bookkeeping. Caller holds session.mu.
  Result<SvtQueryResult> QueryOne(Session& session,
                                  const SvtCandidateQuery& candidate);

  /// Removes a session and pushes its trace with the given close reason.
  Status CloseInternal(const std::string& session_id,
                       const std::string& reason);

  /// Removes sessions idle past the timeout. Caller holds mu_.
  void SweepIdleLocked();

  /// Finalises a session's trace and pushes it to the ring. Caller holds
  /// session.mu (and may hold mu_; PushTrace takes neither).
  void PushTrace(Session& session, const std::string& reason);

  /// Snapshot of one session's counters. Caller holds session.mu.
  static SvtSessionInfo InfoLocked(const Session& session);

  SvtRegistryOptions options_;
  DatasetManager* manager_;
  obs::introspect::TraceRing* trace_ring_;
  std::uint64_t seed_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_number_ = 0;

  struct Metrics {
    obs::Counter* opened;
    obs::Counter* open_refused;
    obs::Counter* closed_explicit;
    obs::Counter* closed_idle;
    obs::Counter* closed_exhausted;
    obs::Gauge* active;
    obs::Counter* answered_above;
    obs::Counter* answered_below;
    obs::Counter* queries_refused;
    obs::Counter* positives;
    obs::Counter* epsilon_charged;
  };
  Metrics metrics_;
};

}  // namespace gupt

#endif  // GUPT_SERVICE_SVT_SESSION_H_
