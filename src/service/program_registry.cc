#include "service/program_registry.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "analytics/kmeans.h"
#include "analytics/linear_regression.h"
#include "analytics/logistic_regression.h"
#include "analytics/pagerank.h"
#include "analytics/pca.h"
#include "analytics/queries.h"

namespace gupt {
namespace spec {
namespace {

Result<std::string> GetRaw(const ProgramSpec& spec, const std::string& key) {
  auto it = spec.params.find(key);
  if (it == spec.params.end()) {
    return Status::InvalidArgument("program '" + spec.name +
                                   "' missing parameter '" + key + "'");
  }
  return it->second;
}

Result<double> ParseDouble(const std::string& text, const std::string& key) {
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() || text.empty()) {
    return Status::InvalidArgument("parameter '" + key +
                                   "' is not a number: " + text);
  }
  return value;
}

Result<std::size_t> ParseSize(const std::string& text, const std::string& key) {
  GUPT_ASSIGN_OR_RETURN(double value, ParseDouble(text, key));
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<std::size_t>(value))) {
    return Status::InvalidArgument("parameter '" + key +
                                   "' is not a non-negative integer: " + text);
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

Result<std::size_t> GetSize(const ProgramSpec& spec, const std::string& key) {
  GUPT_ASSIGN_OR_RETURN(std::string raw, GetRaw(spec, key));
  return ParseSize(raw, key);
}

Result<std::size_t> GetSizeOr(const ProgramSpec& spec, const std::string& key,
                              std::size_t fallback) {
  if (spec.params.find(key) == spec.params.end()) return fallback;
  return GetSize(spec, key);
}

Result<double> GetDouble(const ProgramSpec& spec, const std::string& key) {
  GUPT_ASSIGN_OR_RETURN(std::string raw, GetRaw(spec, key));
  return ParseDouble(raw, key);
}

Result<double> GetDoubleOr(const ProgramSpec& spec, const std::string& key,
                           double fallback) {
  if (spec.params.find(key) == spec.params.end()) return fallback;
  return GetDouble(spec, key);
}

Result<std::vector<std::size_t>> GetSizeList(const ProgramSpec& spec,
                                             const std::string& key) {
  GUPT_ASSIGN_OR_RETURN(std::string raw, GetRaw(spec, key));
  std::vector<std::size_t> out;
  std::stringstream ss(raw);
  std::string field;
  while (std::getline(ss, field, ',')) {
    GUPT_ASSIGN_OR_RETURN(std::size_t value, ParseSize(field, key));
    out.push_back(value);
  }
  if (out.empty()) {
    return Status::InvalidArgument("parameter '" + key + "' is empty");
  }
  return out;
}

}  // namespace spec

Status ProgramRegistry::RegisterBuilder(const std::string& name,
                                        Builder builder) {
  if (name.empty() || !builder) {
    return Status::InvalidArgument("builder name and callable required");
  }
  if (builders_.count(name) != 0) {
    return Status::AlreadyExists("program already registered: " + name);
  }
  builders_[name] = std::move(builder);
  return Status::OK();
}

Result<ProgramFactory> ProgramRegistry::Build(const ProgramSpec& spec) const {
  auto it = builders_.find(spec.name);
  if (it == builders_.end()) {
    return Status::NotFound("no program registered as: " + spec.name);
  }
  return it->second(spec);
}

std::vector<std::string> ProgramRegistry::ListPrograms() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, unused] : builders_) names.push_back(name);
  return names;
}

ProgramRegistry ProgramRegistry::WithStandardPrograms() {
  ProgramRegistry registry;
  auto must = [&registry](const std::string& name, Builder builder) {
    Status s = registry.RegisterBuilder(name, std::move(builder));
    (void)s;  // names are distinct literals below; cannot collide
  };

  must("mean", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t dim, spec::GetSizeOr(s, "dim", 0));
    return analytics::MeanQuery(dim);
  });
  must("variance", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t dim, spec::GetSizeOr(s, "dim", 0));
    return analytics::VarianceQuery(dim);
  });
  must("median", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t dim, spec::GetSizeOr(s, "dim", 0));
    return analytics::MedianQuery(dim);
  });
  must("quantile", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t dim, spec::GetSizeOr(s, "dim", 0));
    GUPT_ASSIGN_OR_RETURN(double q, spec::GetDouble(s, "q"));
    return analytics::QuantileQuery(dim, q);
  });
  must("iqr", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t dim, spec::GetSizeOr(s, "dim", 0));
    return analytics::IqrQuery(dim);
  });
  must("winsorized_mean", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t dim, spec::GetSizeOr(s, "dim", 0));
    GUPT_ASSIGN_OR_RETURN(double trim, spec::GetDoubleOr(s, "trim", 0.05));
    return analytics::WinsorizedMeanQuery(dim, trim);
  });
  must("trimmed_mean", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t dim, spec::GetSizeOr(s, "dim", 0));
    GUPT_ASSIGN_OR_RETURN(double trim, spec::GetDoubleOr(s, "trim", 0.05));
    return analytics::TrimmedMeanQuery(dim, trim);
  });
  must("histogram", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t dim, spec::GetSizeOr(s, "dim", 0));
    GUPT_ASSIGN_OR_RETURN(std::size_t bins, spec::GetSize(s, "bins"));
    GUPT_ASSIGN_OR_RETURN(double lo, spec::GetDouble(s, "lo"));
    GUPT_ASSIGN_OR_RETURN(double hi, spec::GetDouble(s, "hi"));
    return analytics::HistogramQuery(dim, bins, lo, hi);
  });
  must("covariance", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(std::size_t a, spec::GetSize(s, "dim_a"));
    GUPT_ASSIGN_OR_RETURN(std::size_t b, spec::GetSize(s, "dim_b"));
    return analytics::CovarianceQuery(a, b);
  });
  must("covariance_matrix",
       [](const ProgramSpec& s) -> Result<ProgramFactory> {
         GUPT_ASSIGN_OR_RETURN(auto dims, spec::GetSizeList(s, "dims"));
         return analytics::CovarianceMatrixQuery(dims);
       });
  must("decision_stump", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    GUPT_ASSIGN_OR_RETURN(auto dims, spec::GetSizeList(s, "dims"));
    GUPT_ASSIGN_OR_RETURN(std::size_t label, spec::GetSize(s, "label"));
    return analytics::DecisionStumpQuery(dims, label);
  });
  must("kmeans", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    analytics::KMeansOptions opts;
    GUPT_ASSIGN_OR_RETURN(opts.k, spec::GetSize(s, "k"));
    GUPT_ASSIGN_OR_RETURN(opts.feature_dims, spec::GetSizeList(s, "dims"));
    GUPT_ASSIGN_OR_RETURN(opts.max_iterations,
                          spec::GetSizeOr(s, "iterations", 20));
    return analytics::KMeansQuery(opts);
  });
  must("logistic_regression",
       [](const ProgramSpec& s) -> Result<ProgramFactory> {
         analytics::LogisticRegressionOptions opts;
         GUPT_ASSIGN_OR_RETURN(opts.feature_dims, spec::GetSizeList(s, "dims"));
         GUPT_ASSIGN_OR_RETURN(opts.label_dim, spec::GetSize(s, "label"));
         GUPT_ASSIGN_OR_RETURN(opts.max_iterations,
                               spec::GetSizeOr(s, "iterations", 100));
         return analytics::LogisticRegressionQuery(opts);
       });
  must("linear_regression",
       [](const ProgramSpec& s) -> Result<ProgramFactory> {
         analytics::LinearRegressionOptions opts;
         GUPT_ASSIGN_OR_RETURN(opts.feature_dims, spec::GetSizeList(s, "dims"));
         GUPT_ASSIGN_OR_RETURN(opts.target_dim, spec::GetSize(s, "target"));
         return analytics::LinearRegressionQuery(opts);
       });
  must("pagerank", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    analytics::PageRankOptions opts;
    GUPT_ASSIGN_OR_RETURN(opts.num_nodes, spec::GetSize(s, "nodes"));
    GUPT_ASSIGN_OR_RETURN(opts.max_iterations,
                          spec::GetSizeOr(s, "iterations", 100));
    return analytics::PageRankQuery(opts);
  });
  must("pca", [](const ProgramSpec& s) -> Result<ProgramFactory> {
    analytics::PcaOptions opts;
    GUPT_ASSIGN_OR_RETURN(opts.feature_dims, spec::GetSizeList(s, "dims"));
    return analytics::TopComponentQuery(opts);
  });
  return registry;
}

}  // namespace gupt
