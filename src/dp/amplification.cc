#include "dp/amplification.h"

#include <cmath>

namespace gupt {
namespace dp {
namespace {

Status ValidateInputs(double epsilon, double rate, const char* what) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(std::string(what) +
                                   " requires a finite epsilon > 0");
  }
  if (!std::isfinite(rate) || rate <= 0.0 || rate > 1.0) {
    return Status::InvalidArgument(std::string(what) +
                                   " requires a sampling rate in (0, 1]");
  }
  return Status::OK();
}

}  // namespace

const char* AmplificationModeToString(AmplificationMode mode) {
  switch (mode) {
    case AmplificationMode::kOff:
      return "off";
    case AmplificationMode::kRawEpsilon:
      return "raw_epsilon";
    case AmplificationMode::kChargedEpsilon:
      return "charged_epsilon";
  }
  return "off";
}

Result<AmplificationMode> ParseAmplificationMode(const std::string& name) {
  if (name == "off") return AmplificationMode::kOff;
  if (name == "raw_epsilon" || name == "raw" || name == "on") {
    return AmplificationMode::kRawEpsilon;
  }
  if (name == "charged_epsilon" || name == "charged") {
    return AmplificationMode::kChargedEpsilon;
  }
  return Status::InvalidArgument("unknown amplification mode '" + name +
                                 "' (want off|raw_epsilon|charged_epsilon)");
}

Result<double> AmplifiedEpsilon(double epsilon, double rate) {
  Status valid = ValidateInputs(epsilon, rate, "AmplifiedEpsilon");
  if (!valid.ok()) return valid;
  // rate == 1 must reproduce epsilon to the last bit: log1p(expm1(x)) is
  // not the identity in floating point, and the golden tests pin the
  // gamma = 1 charge to exactly the declared epsilon.
  if (rate == 1.0) return epsilon;
  return std::log1p(rate * std::expm1(epsilon));
}

Result<double> RawEpsilonForAmplified(double epsilon_prime, double rate) {
  Status valid = ValidateInputs(epsilon_prime, rate, "RawEpsilonForAmplified");
  if (!valid.ok()) return valid;
  if (rate == 1.0) return epsilon_prime;
  return std::log1p(std::expm1(epsilon_prime) / rate);
}

}  // namespace dp
}  // namespace gupt
