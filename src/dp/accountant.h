// Privacy-budget accounting via sequential composition.
//
// Each dataset registered with GUPT carries a total privacy budget
// (paper §3.1). The composition lemma (Dwork et al.) says running
// epsilon_1-, ..., epsilon_k-DP computations costs epsilon_1 + ... +
// epsilon_k overall, so the accountant is a debit ledger. Crucially the
// *runtime* holds the ledger, not the untrusted analysis program — this is
// GUPT's defence against privacy-budget attacks (paper §6.2): a malicious
// program cannot issue extra queries because it never sees the accountant.

#ifndef GUPT_DP_ACCOUNTANT_H_
#define GUPT_DP_ACCOUNTANT_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace gupt {
namespace dp {

/// One entry in the budget ledger.
struct BudgetCharge {
  std::string label;  // which query/mechanism consumed the budget
  double epsilon;
};

/// A mutually consistent copy of one accountant's state, taken under a
/// single lock acquisition. Reading total/spent/charges through separate
/// accessors can interleave with a concurrent Charge and show a spent
/// total that does not equal the sum of the charge history; introspection
/// endpoints (/budgetz) must never publish such a torn view.
struct AccountantSnapshot {
  double total_epsilon = 0.0;
  double spent_epsilon = 0.0;
  std::vector<BudgetCharge> charges;  // in charge order

  /// Clamped at zero, matching PrivacyAccountant::remaining_epsilon().
  double remaining_epsilon() const {
    double rest = total_epsilon - spent_epsilon;
    return rest > 0.0 ? rest : 0.0;
  }
};

/// The ledger's totals without the charge history — what a once-a-second
/// sampler (the obs time-series collector) needs. Copying the full
/// AccountantSnapshot would clone an unbounded charge vector per tick.
struct BudgetTotals {
  double total_epsilon = 0.0;
  double spent_epsilon = 0.0;
  std::size_t num_charges = 0;

  /// Clamped at zero, matching PrivacyAccountant::remaining_epsilon().
  double remaining_epsilon() const {
    double rest = total_epsilon - spent_epsilon;
    return rest > 0.0 ? rest : 0.0;
  }
};

/// Thread-safe epsilon-DP budget ledger for one dataset.
class PrivacyAccountant {
 public:
  /// Creates a ledger with the given total budget (must be positive).
  explicit PrivacyAccountant(double total_epsilon);

  /// Atomically debits `epsilon` if the remaining budget covers it;
  /// otherwise returns kBudgetExhausted and debits nothing. The charge is
  /// taken *before* the mechanism runs so that a failing or malicious
  /// computation cannot roll it back.
  Status Charge(double epsilon, const std::string& label);

  double total_epsilon() const;
  double spent_epsilon() const;
  double remaining_epsilon() const;

  /// Number of successful charges so far.
  std::size_t num_charges() const;

  /// Copy of the ledger, in charge order.
  std::vector<BudgetCharge> charges() const;

  /// Atomic copy of the whole ledger state (totals + history agree).
  AccountantSnapshot Snapshot() const;

  /// Atomic copy of the totals alone — one lock acquisition, no history
  /// copy. Same consistency guarantee as Snapshot().
  BudgetTotals Totals() const;

 private:
  mutable std::mutex mu_;
  double total_epsilon_;
  double spent_epsilon_ = 0.0;
  std::vector<BudgetCharge> charges_;
};

}  // namespace dp
}  // namespace gupt

#endif  // GUPT_DP_ACCOUNTANT_H_
