// Floating-point-hardened Laplace release (Mironov, CCS 2012).
//
// The textbook Laplace mechanism is stated over the reals; implemented in
// IEEE-754 doubles, the noise sample's low-order bits betray the un-noised
// value because the achievable floating-point values around `value + noise`
// depend on `value`. Mironov's *snapping mechanism* repairs this: clamp
// the value into a public bound, add Laplace noise computed from a uniform
// draw, then SNAP the sum to the nearest multiple of Lambda, the smallest
// power of two at or above the noise scale, and clamp again. Snapping
// erases the low-order-bit channel at the cost of at most Lambda/2 extra
// error and a slightly inflated epsilon (<= 1.2x for reasonable bounds).
//
// This module is the production-release variant of dp::LaplaceMechanism;
// the rest of the runtime keeps the textbook mechanism (whose exactness
// the paper's experiments assume), but deployments handling adversarial
// analysts should substitute this one.

#ifndef GUPT_DP_SNAPPING_H_
#define GUPT_DP_SNAPPING_H_

#include "common/rng.h"
#include "common/status.h"

namespace gupt {
namespace dp {

/// The snapping grid: the smallest power of two >= scale. Exposed for
/// testing and for error budgeting (the snap adds at most Lambda/2).
double SnappingLambda(double scale);

/// Rounds x to the nearest multiple of lambda (ties away from zero).
double SnapToGrid(double x, double lambda);

/// Releases `value` with sensitivity/epsilon-calibrated Laplace noise,
/// snapped per Mironov 2012. `bound` is the public magnitude bound B: the
/// value is clamped into [-B, B] before and after noising. Errors on
/// non-positive epsilon/bound or negative sensitivity.
Result<double> SnappingLaplaceMechanism(double value, double sensitivity,
                                        double epsilon, double bound,
                                        Rng* rng);

}  // namespace dp
}  // namespace gupt

#endif  // GUPT_DP_SNAPPING_H_
