// The Laplace mechanism (Dwork, McSherry, Nissim, Smith — TCC 2006).
//
// Releasing f(T) + Lap(sensitivity / epsilon) is epsilon-differentially
// private when `sensitivity` bounds the L1 change of f across neighbouring
// datasets. This is the only noise primitive the sample-and-aggregate
// framework needs (paper Algorithm 1, line 8).

#ifndef GUPT_DP_LAPLACE_H_
#define GUPT_DP_LAPLACE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"

namespace gupt {
namespace dp {

/// Adds Laplace noise calibrated to `sensitivity / epsilon` to `value`.
/// Errors when epsilon <= 0 or sensitivity < 0.
Result<double> LaplaceMechanism(double value, double sensitivity,
                                double epsilon, Rng* rng);

/// Per-coordinate Laplace mechanism with a shared scalar sensitivity and a
/// per-coordinate privacy budget of `epsilon` each. Callers are responsible
/// for composing the coordinate budgets (Theorem 1 splits the total budget
/// across output dimensions before reaching this point).
Result<Row> LaplaceMechanismVector(const Row& values, double sensitivity,
                                   double epsilon, Rng* rng);

/// The noise scale b such that Lap(b) makes the release epsilon-DP.
/// Standard deviation of the released value is sqrt(2) * b.
Result<double> LaplaceScale(double sensitivity, double epsilon);

}  // namespace dp
}  // namespace gupt

#endif  // GUPT_DP_LAPLACE_H_
