#include "dp/noisy_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/laplace.h"

namespace gupt {
namespace dp {

Result<double> NoisyCount(std::size_t count, double epsilon, Rng* rng) {
  return LaplaceMechanism(static_cast<double>(count), /*sensitivity=*/1.0,
                          epsilon, rng);
}

Result<double> NoisySum(const std::vector<double>& values, double lo,
                        double hi, double epsilon, Rng* rng) {
  if (!(lo <= hi)) {
    return Status::InvalidArgument("clamp range [lo, hi] is invalid");
  }
  double sum = 0.0;
  for (double v : values) sum += vec::ClampScalar(v, lo, hi);
  double sensitivity = std::max(std::fabs(lo), std::fabs(hi));
  return LaplaceMechanism(sum, sensitivity, epsilon, rng);
}

Result<double> NoisyAverage(const std::vector<double>& values, double lo,
                            double hi, double epsilon, Rng* rng) {
  if (values.empty()) {
    return Status::InvalidArgument("noisy average of an empty sequence");
  }
  if (!(lo <= hi)) {
    return Status::InvalidArgument("clamp range [lo, hi] is invalid");
  }
  double sum = 0.0;
  for (double v : values) sum += vec::ClampScalar(v, lo, hi);
  double n = static_cast<double>(values.size());
  // Changing one clamped record moves the mean by at most (hi-lo)/n.
  return LaplaceMechanism(sum / n, (hi - lo) / n, epsilon, rng);
}

Result<Row> NoisyAverageRows(const std::vector<Row>& rows, const Row& lo,
                             const Row& hi, double epsilon, Rng* rng) {
  if (rows.empty()) {
    return Status::InvalidArgument("noisy average of an empty row set");
  }
  if (lo.size() != hi.size() || lo.size() != rows[0].size()) {
    return Status::InvalidArgument("bound dimensions do not match rows");
  }
  Row out(lo.size());
  for (std::size_t d = 0; d < lo.size(); ++d) {
    std::vector<double> column;
    column.reserve(rows.size());
    for (const Row& r : rows) {
      if (r.size() != lo.size()) {
        return Status::InvalidArgument("rows have inconsistent dimensions");
      }
      column.push_back(r[d]);
    }
    GUPT_ASSIGN_OR_RETURN(out[d],
                          NoisyAverage(column, lo[d], hi[d], epsilon, rng));
  }
  return out;
}

Result<std::size_t> ExponentialChoice(const std::vector<double>& scores,
                                      double sensitivity, double epsilon,
                                      Rng* rng) {
  if (scores.empty()) {
    return Status::InvalidArgument("exponential choice over an empty set");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("score sensitivity must be positive");
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  double max_score = -std::numeric_limits<double>::infinity();
  for (double s : scores) max_score = std::max(max_score, s);
  std::vector<double> weights(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    weights[i] =
        std::exp(epsilon * (scores[i] - max_score) / (2.0 * sensitivity));
  }
  return rng->Categorical(weights);
}

}  // namespace dp
}  // namespace gupt
