// Differentially private percentile estimation.
//
// Implements the exponential-mechanism percentile estimator from Smith
// (STOC 2011), which GUPT uses for output-range estimation (paper §4.1):
// the candidate outputs are the intervals between consecutive order
// statistics (after clamping into a public range), an interval's utility is
// the negated rank distance to the target percentile, and the released
// value is uniform inside the sampled interval.

#ifndef GUPT_DP_PERCENTILE_H_
#define GUPT_DP_PERCENTILE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace gupt {
namespace dp {

struct PercentileOptions {
  /// Target percentile in (0, 1), e.g. 0.25 for the lower quartile.
  double percentile = 0.5;
  /// Public clamp range for the values. Must satisfy lo <= hi; values are
  /// clamped into the range before the mechanism runs so that the rank
  /// utility has sensitivity 1.
  double lo = 0.0;
  double hi = 1.0;
  /// Privacy budget for this single release.
  double epsilon = 1.0;
};

/// Releases an epsilon-DP estimate of the given percentile of `values`.
///
/// Privacy: the rank utility u(T, interval_i) = -|i - p*n| changes by at
/// most 1 when one record changes, so sampling interval i with probability
/// proportional to width_i * exp(epsilon * u_i / 2) is epsilon-DP
/// (McSherry-Talwar). Weights are computed in log space to stay stable for
/// large n * epsilon.
///
/// Known artifact of this construction: intervals between *equal* order
/// statistics have zero width and hence zero weight, so for data with a
/// large point mass the release is dominated by the remaining wide
/// intervals. The epsilon-DP guarantee is unaffected; accuracy degrades to
/// "uniform over the public range" in the extreme all-equal case.
///
/// Errors on empty input, invalid range, percentile outside (0,1), or
/// non-positive epsilon.
Result<double> PrivatePercentile(const std::vector<double>& values,
                                 const PercentileOptions& options, Rng* rng);

/// Releases a (lower, upper) percentile pair, each with `epsilon_each`
/// budget; total privacy cost is 2 * epsilon_each by composition. The pair
/// is swapped into order if noise inverts it.
Result<std::pair<double, double>> PrivateQuantilePair(
    const std::vector<double>& values, double lo, double hi,
    double lower_percentile, double upper_percentile, double epsilon_each,
    Rng* rng);

/// Convenience wrapper releasing the (25th, 75th) percentile pair, each with
/// `epsilon_each` budget — the paper's default inter-quartile output-range
/// estimate. Total privacy cost is 2 * epsilon_each by composition.
Result<std::pair<double, double>> PrivateInterquartileRange(
    const std::vector<double>& values, double lo, double hi,
    double epsilon_each, Rng* rng);

}  // namespace dp
}  // namespace gupt

#endif  // GUPT_DP_PERCENTILE_H_
