// Privacy amplification by sampling (paper §4 + ROADMAP item).
//
// The amplification-by-sampling lemma (Li/Qardaji "k-Anonymization Meets
// Differential Privacy"; Lin/Wang/Rane "Sampling in Privacy Preserving
// Statistical Analysis"): if the *released output* depends only on a
// random subsample that includes each record independently with
// probability gamma, and the mechanism applied to that subsample is
// epsilon-DP, then with respect to the full dataset the release is
//
//     epsilon' = ln(1 + gamma * (e^epsilon - 1))
//
// DP, with epsilon' <= epsilon and epsilon' ~= gamma * epsilon for small
// epsilon.
//
// SOUNDNESS — what does and does not qualify. The lemma's hypothesis is
// that the release depends on ONE random gamma-subsample. GUPT's ordinary
// sample-and-aggregate release does NOT qualify: it averages the outputs
// of ALL blocks of a partition, so every record influences the released
// value (a disjoint partition includes each record with probability 1 in
// exactly one block). That setting is parallel composition, which is
// exactly what already justifies calibrating noise at the raw epsilon —
// charging the amplified epsilon' for it would undercharge the real
// privacy loss by ~1/gamma. The runtime therefore only enables
// amplification by *changing the mechanism*: under any non-off mode the
// pipeline draws a Bernoulli(gamma) subsample of the dataset first,
// partitions only the subsample, and aggregates only over it
// (PartitionStage in core/pipeline/stages.cc). Nothing outside the
// subsample is ever read, so the lemma applies to the whole release.
//
// This module is pure math: the closed form, its inverse (so an analyst
// target epsilon' can be mapped back to the raw epsilon the chambers must
// run at), and the mode enum threaded from QuerySpec to the ledger. The
// charging policy itself lives in core/pipeline (PlanStage converts,
// AdmitStage charges, PartitionStage subsamples) — see
// docs/amplification.md.

#ifndef GUPT_DP_AMPLIFICATION_H_
#define GUPT_DP_AMPLIFICATION_H_

#include <string>

#include "common/status.h"

namespace gupt {
namespace dp {

/// How a query's declared epsilon relates to the ledger charge.
enum class AmplificationMode {
  /// Pre-amplification behaviour: no subsampling; the declared epsilon is
  /// both the noise calibration and the ledger charge. Bit-identical to
  /// the historical pipeline (golden-pinned).
  kOff = 0,
  /// The declared epsilon is the *raw* epsilon of the mechanism run on a
  /// Bernoulli(rate) subsample of the data: noise is calibrated at the
  /// declared value, and the ledger is charged the amplified
  /// epsilon' = AmplifiedEpsilon(epsilon, rate).
  kRawEpsilon,
  /// The declared epsilon is the *target charge* epsilon': the ledger is
  /// debited exactly the declared value, and the subsampled mechanism
  /// runs at the larger raw epsilon = RawEpsilonForAmplified(epsilon',
  /// rate). The derived raw epsilon is unbounded as rate -> 0, so
  /// PlanStage rejects conversions above
  /// QuerySpec::amplification_raw_epsilon_cap.
  kChargedEpsilon,
};

/// Default ceiling on the raw epsilon kChargedEpsilon may derive
/// (QuerySpec::amplification_raw_epsilon_cap). Without a cap, a small
/// sampling rate converts a modest declared charge into an arbitrarily
/// large per-query raw epsilon (rate 0.005 at epsilon' = 1 gives raw
/// epsilon ~5.8); the cap keeps any single release's worst-case leak on
/// the subsample bounded.
inline constexpr double kDefaultRawEpsilonCap = 4.0;

/// Short stable name ("off", "raw_epsilon", "charged_epsilon") used in
/// /budgetz, audit records, CLI output, and trace annotations.
const char* AmplificationModeToString(AmplificationMode mode);

/// Parses the names produced by AmplificationModeToString (plus the CLI
/// shorthands "raw" and "charged"). Returns kInvalidArgument otherwise.
Result<AmplificationMode> ParseAmplificationMode(const std::string& name);

/// The amplified charge epsilon' = ln(1 + rate * (e^epsilon - 1)) for a
/// mechanism whose release depends only on a Bernoulli(rate) subsample
/// and is `epsilon`-DP on it. Computed as log1p(rate * expm1(epsilon)) so
/// the small-epsilon regime keeps full relative precision; rate == 1
/// returns `epsilon` exactly (bit-for-bit), so a rate-1 query charges
/// precisely what it would uncharged. Requires epsilon finite and > 0,
/// and rate in (0, 1].
Result<double> AmplifiedEpsilon(double epsilon, double rate);

/// The inverse map: the raw epsilon the subsampled mechanism must run at
/// so that the amplified charge equals `epsilon_prime` under sampling
/// rate `rate`, i.e. epsilon = ln(1 + (e^epsilon' - 1) / rate). rate == 1
/// returns `epsilon_prime` exactly. Requires epsilon_prime finite and
/// > 0, and rate in (0, 1]. Pure math — callers converting a charge into
/// a calibration (PlanStage) must additionally enforce a raw-epsilon cap,
/// because the result grows without bound as rate -> 0.
Result<double> RawEpsilonForAmplified(double epsilon_prime, double rate);

}  // namespace dp
}  // namespace gupt

#endif  // GUPT_DP_AMPLIFICATION_H_
