// Privacy amplification by sampling (paper §4 + ROADMAP item).
//
// GUPT's sample-and-aggregate framework never shows the analyst's program
// more than a sample of the dataset: a resampled block holds
// block_size/n of the records, and a disjoint partition shows each
// *record* to exactly one chamber. The amplification-by-sampling lemma
// (Li/Qardaji "k-Anonymization Meets Differential Privacy"; Lin/Wang/Rane
// "Sampling in Privacy Preserving Statistical Analysis") turns that
// sampling into budget savings: a mechanism that is epsilon-DP on a
// gamma-fraction sample of the data is
//
//     epsilon' = ln(1 + gamma * (e^epsilon - 1))
//
// DP with respect to the full dataset, with epsilon' <= epsilon and
// epsilon' ~= gamma * epsilon for small epsilon. The runtime can therefore
// calibrate noise at the raw in-chamber epsilon while debiting only the
// amplified epsilon' from the dataset ledger.
//
// This module is pure math: the closed form, its inverse (so an analyst
// target epsilon' can be mapped back to the raw epsilon the chambers must
// run at), and the mode enum threaded from QuerySpec to the ledger. The
// charging policy itself lives in core/pipeline (AdmitStage charges,
// AggregateStage calibrates) — see docs/amplification.md.

#ifndef GUPT_DP_AMPLIFICATION_H_
#define GUPT_DP_AMPLIFICATION_H_

#include <string>

#include "common/status.h"

namespace gupt {
namespace dp {

/// How a query's declared epsilon relates to the ledger charge.
enum class AmplificationMode {
  /// Pre-amplification behaviour: the declared epsilon is both the noise
  /// calibration and the ledger charge. Bit-identical to the historical
  /// pipeline (golden-pinned).
  kOff = 0,
  /// The declared epsilon is the *raw* in-chamber epsilon: noise is
  /// calibrated exactly as under kOff, but the ledger is charged the
  /// amplified epsilon' = AmplifiedEpsilon(epsilon, sampling_rate).
  kRawEpsilon,
  /// The declared epsilon is the *target charge* epsilon': the ledger is
  /// debited exactly the declared value, and the chambers run at the
  /// larger raw epsilon = RawEpsilonForAmplified(epsilon', sampling_rate),
  /// so the released answer is less noisy for the same ledger cost.
  kChargedEpsilon,
};

/// Short stable name ("off", "raw_epsilon", "charged_epsilon") used in
/// /budgetz, audit records, CLI output, and trace annotations.
const char* AmplificationModeToString(AmplificationMode mode);

/// Parses the names produced by AmplificationModeToString (plus the CLI
/// shorthands "raw" and "charged"). Returns kInvalidArgument otherwise.
Result<AmplificationMode> ParseAmplificationMode(const std::string& name);

/// The amplified charge epsilon' = ln(1 + rate * (e^epsilon - 1)) for a
/// mechanism that is `epsilon`-DP on a `rate`-fraction sample. Computed as
/// log1p(rate * expm1(epsilon)) so the small-epsilon regime keeps full
/// relative precision; rate == 1 returns `epsilon` exactly (bit-for-bit),
/// so a gamma = 1 query charges precisely what it would uncharged.
/// Requires epsilon finite and > 0, and rate in (0, 1].
Result<double> AmplifiedEpsilon(double epsilon, double rate);

/// The inverse map: the raw epsilon a chamber must run at so that the
/// amplified charge equals `epsilon_prime` under sampling rate `rate`,
/// i.e. epsilon = ln(1 + (e^epsilon' - 1) / rate). rate == 1 returns
/// `epsilon_prime` exactly. Requires epsilon_prime finite and > 0, and
/// rate in (0, 1].
Result<double> RawEpsilonForAmplified(double epsilon_prime, double rate);

}  // namespace dp
}  // namespace gupt

#endif  // GUPT_DP_AMPLIFICATION_H_
