#include "dp/svt.h"

#include <cmath>

namespace gupt {
namespace dp {
namespace {

Status ValidateConfig(const SvtConfig& config) {
  if (!std::isfinite(config.threshold)) {
    return Status::InvalidArgument("svt threshold must be finite");
  }
  if (!(config.sensitivity > 0.0) || !std::isfinite(config.sensitivity)) {
    return Status::InvalidArgument("svt sensitivity must be positive");
  }
  if (!(config.epsilon1 > 0.0) || !std::isfinite(config.epsilon1)) {
    return Status::InvalidArgument("svt epsilon1 must be positive");
  }
  if (!(config.epsilon2 > 0.0) || !std::isfinite(config.epsilon2)) {
    return Status::InvalidArgument("svt epsilon2 must be positive");
  }
  if (config.max_positives == 0) {
    return Status::InvalidArgument("svt max_positives must be >= 1");
  }
  return Status::OK();
}

/// P[X - Y >= t] for independent X ~ Lap(a), Y ~ Lap(b); exact.
double LaplaceDifferenceTail(double t, double a, double b) {
  if (t < 0.0) return 1.0 - LaplaceDifferenceTail(-t, a, b);
  // Relative closeness guards the a ~= b cancellation in the a != b form.
  if (std::abs(a - b) <= 1e-9 * std::max(a, b)) {
    return (2.0 * a + t) * std::exp(-t / a) / (4.0 * a);
  }
  const double num =
      a * a * std::exp(-t / a) - b * b * std::exp(-t / b);
  return num / (2.0 * (a * a - b * b));
}

}  // namespace

SvtConfig SvtConfig::EvenSplit(double epsilon, double threshold,
                               std::size_t max_positives,
                               double sensitivity) {
  SvtConfig config;
  config.threshold = threshold;
  config.sensitivity = sensitivity;
  config.epsilon1 = epsilon / 2.0;
  config.epsilon2 = epsilon / 2.0;
  config.max_positives = max_positives;
  return config;
}

Result<double> SvtThresholdScale(const SvtConfig& config) {
  GUPT_RETURN_IF_ERROR(ValidateConfig(config));
  return config.sensitivity / config.epsilon1;
}

Result<double> SvtQueryScale(const SvtConfig& config) {
  GUPT_RETURN_IF_ERROR(ValidateConfig(config));
  return 2.0 * static_cast<double>(config.max_positives) *
         config.sensitivity / config.epsilon2;
}

Result<double> SvtAboveProbability(double margin, const SvtConfig& config) {
  GUPT_ASSIGN_OR_RETURN(double b, SvtThresholdScale(config));
  GUPT_ASSIGN_OR_RETURN(double a, SvtQueryScale(config));
  if (!std::isfinite(margin)) {
    return Status::InvalidArgument("svt margin must be finite");
  }
  // ABOVE iff q + nu >= tau + rho iff nu - rho >= -margin.
  return LaplaceDifferenceTail(-margin, a, b);
}

Result<SvtEngine> SvtEngine::Create(const SvtConfig& config, Rng rng) {
  GUPT_ASSIGN_OR_RETURN(double threshold_scale, SvtThresholdScale(config));
  GUPT_ASSIGN_OR_RETURN(double query_scale, SvtQueryScale(config));
  return SvtEngine(config, rng, threshold_scale, query_scale);
}

SvtEngine::SvtEngine(const SvtConfig& config, Rng rng, double threshold_scale,
                     double query_scale)
    : config_(config),
      rng_(rng),
      threshold_scale_(threshold_scale),
      query_scale_(query_scale),
      noisy_threshold_(0.0) {
  ResampleThreshold();
}

void SvtEngine::ResampleThreshold() {
  noisy_threshold_ = config_.threshold + rng_.Laplace(threshold_scale_);
}

Result<SvtAnswer> SvtEngine::Process(double query_value) {
  if (exhausted()) {
    return Status::BudgetExhausted(
        "svt session exhausted: all positive answers spent");
  }
  if (!std::isfinite(query_value)) {
    return Status::InvalidArgument("svt query value must be finite");
  }
  const double noisy_value = query_value + rng_.Laplace(query_scale_);
  SvtAnswer answer;
  if (noisy_value >= noisy_threshold_) {
    answer.verdict = SvtVerdict::kAbove;
    answer.gap = noisy_value - noisy_threshold_;
    ++positives_;
    // Pay-only-on-positive: the threshold noise is refreshed after every
    // ABOVE so the next positive is protected by an independent rho.
    // (Reusing one rho across positives is another of the broken shapes.)
    if (!exhausted()) ResampleThreshold();
  }
  ++answered_;
  return answer;
}

}  // namespace dp
}  // namespace gupt
