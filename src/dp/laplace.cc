#include "dp/laplace.h"

#include <cmath>

namespace gupt {
namespace dp {

Result<double> LaplaceScale(double sensitivity, double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (sensitivity < 0.0 || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument("sensitivity must be non-negative");
  }
  return sensitivity / epsilon;
}

Result<double> LaplaceMechanism(double value, double sensitivity,
                                double epsilon, Rng* rng) {
  GUPT_ASSIGN_OR_RETURN(double scale, LaplaceScale(sensitivity, epsilon));
  if (scale == 0.0) return value;  // zero sensitivity: release exactly
  return value + rng->Laplace(scale);
}

Result<Row> LaplaceMechanismVector(const Row& values, double sensitivity,
                                   double epsilon, Rng* rng) {
  GUPT_ASSIGN_OR_RETURN(double scale, LaplaceScale(sensitivity, epsilon));
  Row out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] + (scale == 0.0 ? 0.0 : rng->Laplace(scale));
  }
  return out;
}

}  // namespace dp
}  // namespace gupt
