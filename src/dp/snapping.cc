#include "dp/snapping.h"

#include <cmath>

#include "common/vec.h"
#include "dp/laplace.h"

namespace gupt {
namespace dp {

double SnappingLambda(double scale) {
  if (scale <= 0.0) return 0.0;
  // Smallest power of two >= scale.
  int exponent = 0;
  double mantissa = std::frexp(scale, &exponent);  // scale = m * 2^e, m in [0.5,1)
  if (mantissa == 0.5) exponent -= 1;              // exactly a power of two
  return std::ldexp(1.0, exponent);
}

double SnapToGrid(double x, double lambda) {
  if (lambda <= 0.0) return x;
  return std::round(x / lambda) * lambda;
}

Result<double> SnappingLaplaceMechanism(double value, double sensitivity,
                                        double epsilon, double bound,
                                        Rng* rng) {
  if (!(bound > 0.0) || !std::isfinite(bound)) {
    return Status::InvalidArgument("bound must be positive and finite");
  }
  GUPT_ASSIGN_OR_RETURN(double scale, LaplaceScale(sensitivity, epsilon));
  double clamped = vec::ClampScalar(value, -bound, bound);
  if (scale == 0.0) return clamped;

  // Laplace draw via inverse CDF on a (0,1] uniform. (A full Mironov
  // implementation additionally samples the uniform with exact geometric
  // exponent randomisation; the snapping step below is what removes the
  // low-order-bit channel that practical attacks exploit.)
  double u = rng->UniformDoublePositive() - 0.5;
  double sign = (u >= 0) ? 1.0 : -1.0;
  double noise = -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));

  double lambda = SnappingLambda(scale);
  double snapped = SnapToGrid(clamped + noise, lambda);
  return vec::ClampScalar(snapped, -bound, bound);
}

}  // namespace dp
}  // namespace gupt
