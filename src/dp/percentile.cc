#include "dp/percentile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/vec.h"

namespace gupt {
namespace dp {

Result<double> PrivatePercentile(const std::vector<double>& values,
                                 const PercentileOptions& options, Rng* rng) {
  if (values.empty()) {
    return Status::InvalidArgument("private percentile of an empty sequence");
  }
  if (!(options.percentile > 0.0 && options.percentile < 1.0)) {
    return Status::InvalidArgument("percentile must be in (0, 1)");
  }
  if (!(options.epsilon > 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (!(options.lo <= options.hi) || !std::isfinite(options.lo) ||
      !std::isfinite(options.hi)) {
    return Status::InvalidArgument("clamp range [lo, hi] is invalid");
  }
  if (options.lo == options.hi) {
    // Degenerate public range: every clamped value equals lo, and so does
    // every percentile. Nothing private is revealed.
    return options.lo;
  }

  const std::size_t n = values.size();
  std::vector<double> sorted(n + 2);
  sorted[0] = options.lo;
  for (std::size_t i = 0; i < n; ++i) {
    sorted[i + 1] = vec::ClampScalar(values[i], options.lo, options.hi);
  }
  sorted[n + 1] = options.hi;
  std::sort(sorted.begin() + 1, sorted.end() - 1);

  // Interval i spans [sorted[i], sorted[i+1]] for i in [0, n]. Utility is
  // the negated rank distance to the target rank; log-weight adds the
  // interval width so the mechanism is the continuous exponential mechanism
  // over [lo, hi].
  const double target_rank = options.percentile * static_cast<double>(n);
  std::vector<double> log_weights(n + 1);
  double max_log_weight = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i <= n; ++i) {
    double width = sorted[i + 1] - sorted[i];
    double utility = -std::fabs(static_cast<double>(i) - target_rank);
    double lw = (width > 0.0)
                    ? std::log(width) + 0.5 * options.epsilon * utility
                    : -std::numeric_limits<double>::infinity();
    log_weights[i] = lw;
    max_log_weight = std::max(max_log_weight, lw);
  }
  if (!std::isfinite(max_log_weight)) {
    // All intervals have zero width: the clamped data is a point mass that
    // fills the entire range only when lo == hi, handled above; otherwise
    // every value collapsed to one point. Release that point — it is lo or
    // hi or between, but the weights carry no information. Fall back to the
    // interval endpoints' midpoint closest to the target rank.
    return sorted[static_cast<std::size_t>(
        vec::ClampScalar(std::round(target_rank), 0.0,
                         static_cast<double>(n)))];
  }

  std::vector<double> weights(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    weights[i] = std::exp(log_weights[i] - max_log_weight);
  }
  std::size_t chosen = rng->Categorical(weights);
  return rng->UniformDouble(sorted[chosen], sorted[chosen + 1]);
}

Result<std::pair<double, double>> PrivateQuantilePair(
    const std::vector<double>& values, double lo, double hi,
    double lower_percentile, double upper_percentile, double epsilon_each,
    Rng* rng) {
  if (!(lower_percentile < upper_percentile)) {
    return Status::InvalidArgument(
        "lower percentile must be below the upper one");
  }
  PercentileOptions opts;
  opts.lo = lo;
  opts.hi = hi;
  opts.epsilon = epsilon_each;
  opts.percentile = lower_percentile;
  GUPT_ASSIGN_OR_RETURN(double q_lo, PrivatePercentile(values, opts, rng));
  opts.percentile = upper_percentile;
  GUPT_ASSIGN_OR_RETURN(double q_hi, PrivatePercentile(values, opts, rng));
  if (q_lo > q_hi) std::swap(q_lo, q_hi);  // noise can invert the order
  return std::make_pair(q_lo, q_hi);
}

Result<std::pair<double, double>> PrivateInterquartileRange(
    const std::vector<double>& values, double lo, double hi,
    double epsilon_each, Rng* rng) {
  return PrivateQuantilePair(values, lo, hi, 0.25, 0.75, epsilon_each, rng);
}

}  // namespace dp
}  // namespace gupt
