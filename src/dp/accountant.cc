#include "dp/accountant.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gupt {
namespace dp {
namespace {

// Tolerance for floating-point accumulation when comparing against the
// total: a charge that overshoots by less than this is still admitted so
// that e.g. ten charges of total/10 exactly exhaust the budget.
constexpr double kSlack = 1e-9;

}  // namespace

PrivacyAccountant::PrivacyAccountant(double total_epsilon)
    : total_epsilon_(total_epsilon) {
  assert(total_epsilon > 0.0 && std::isfinite(total_epsilon));
}

Status PrivacyAccountant::Charge(double epsilon, const std::string& label) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("charge epsilon must be positive: " + label);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spent_epsilon_ + epsilon > total_epsilon_ * (1.0 + kSlack) + kSlack) {
    return Status::BudgetExhausted(
        "charge of " + std::to_string(epsilon) + " for '" + label +
        "' exceeds remaining budget " +
        std::to_string(total_epsilon_ - spent_epsilon_));
  }
  spent_epsilon_ += epsilon;
  charges_.push_back(BudgetCharge{label, epsilon});
  return Status::OK();
}

double PrivacyAccountant::total_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_epsilon_;
}

double PrivacyAccountant::spent_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spent_epsilon_;
}

double PrivacyAccountant::remaining_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::max(0.0, total_epsilon_ - spent_epsilon_);
}

std::size_t PrivacyAccountant::num_charges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charges_.size();
}

std::vector<BudgetCharge> PrivacyAccountant::charges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charges_;
}

AccountantSnapshot PrivacyAccountant::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  AccountantSnapshot snapshot;
  snapshot.total_epsilon = total_epsilon_;
  snapshot.spent_epsilon = spent_epsilon_;
  snapshot.charges = charges_;
  return snapshot;
}

BudgetTotals PrivacyAccountant::Totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  BudgetTotals totals;
  totals.total_epsilon = total_epsilon_;
  totals.spent_epsilon = spent_epsilon_;
  totals.num_charges = charges_.size();
  return totals;
}

}  // namespace dp
}  // namespace gupt
