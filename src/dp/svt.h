// The Sparse Vector Technique — a *correct* variant.
//
// SVT answers a stream of threshold queries "is q_i(T) above tau?" and
// pays privacy budget only for the (at most c) ABOVE answers; every
// below-threshold answer is free, so one constant session budget serves
// unboundedly many negative probes. That property is exactly what an
// interactive deployment (dashboards, alerting, top-k candidate scans)
// needs on top of GUPT's one-shot aggregates, whose every release pays
// its full epsilon.
//
// Most published SVT variants are NOT differentially private. Chen &
// Machanavajjhala ("On the Privacy Properties of Variants on the Sparse
// Vector Technique") catalog the failures; the two classic ones:
//
//   * no per-query noise (Stoddard et al.): only the threshold is
//     noised, so two neighbouring datasets whose queries move in
//     opposite directions produce outcome sequences with UNBOUNDED
//     likelihood ratio (tests/dp/svt_statistical_test.cc demonstrates
//     the attack and would catch a regression to this shape);
//   * per-query noise that does not scale with c (Lee & Clifton): each
//     positive leaks a constant, so c positives cost c times the
//     claimed budget.
//
// This implementation is the verified Lyu/Su/Li "Algorithm 1" shape:
//
//   rho   ~ Lap(Delta / eps1)          noisy threshold, resampled after
//                                      every ABOVE answer
//   nu_i  ~ Lap(2 c Delta / eps2)      fresh noise per query
//   answer ABOVE iff q_i + nu_i >= tau + rho; halt after c ABOVEs
//
// which is (eps1 + eps2)-DP for the whole stream regardless of its
// length. With the default even split eps1 = eps2 = eps/2 the scales
// are the familiar Lap(2 Delta / eps) and Lap(4 c Delta / eps).
//
// On each ABOVE answer the engine also releases the *gap*
// (q_i + nu_i) - (tau + rho): by Ding, Durfee & Rogers ("Free Gap
// Information from the Differentially Private Sparse Vector") this
// costs no additional budget and gives top-k consumers a noisy margin
// to rank positives by.

#ifndef GUPT_DP_SVT_H_
#define GUPT_DP_SVT_H_

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace gupt {
namespace dp {

/// Parameters of one SVT session. The threshold and the budget split are
/// public; `sensitivity` must bound the L1 change of every query in the
/// stream across neighbouring datasets (for counting queries, the number
/// of records one user contributes).
struct SvtConfig {
  /// Public threshold tau the queries are compared against.
  double threshold = 0.0;
  /// L1 sensitivity Delta of each query (> 0).
  double sensitivity = 1.0;
  /// Budget for the noisy threshold (> 0).
  double epsilon1 = 0.0;
  /// Budget shared by the at-most-c positive answers (> 0).
  double epsilon2 = 0.0;
  /// Maximum number of ABOVE answers before the session halts (c >= 1).
  std::size_t max_positives = 1;

  /// The constant session cost, charged once up front.
  double total_epsilon() const { return epsilon1 + epsilon2; }

  /// The standard parameterisation: total budget `epsilon` split evenly,
  /// giving rho ~ Lap(2 Delta / epsilon) and nu ~ Lap(4 c Delta / epsilon).
  static SvtConfig EvenSplit(double epsilon, double threshold,
                             std::size_t max_positives,
                             double sensitivity = 1.0);
};

/// The verdict for one query. SVT never releases the noisy value itself
/// for below-threshold queries — only this bit (plus the free gap on
/// ABOVE), which is why negatives are free.
enum class SvtVerdict { kBelow, kAbove };

/// One answered query.
struct SvtAnswer {
  SvtVerdict verdict = SvtVerdict::kBelow;
  /// Free-gap release (Ding/Durfee/Rogers): (q + nu) - (tau + rho), only
  /// meaningful (and always >= 0) when verdict == kAbove; 0 otherwise.
  double gap = 0.0;
};

/// Scale of the threshold noise rho: Delta / eps1 (= 2 Delta / eps under
/// the even split). Errors on invalid configs.
Result<double> SvtThresholdScale(const SvtConfig& config);

/// Scale of the per-query noise nu: 2 c Delta / eps2 (= 4 c Delta / eps
/// under the even split). Errors on invalid configs.
Result<double> SvtQueryScale(const SvtConfig& config);

/// Exact P[ABOVE] for a single query whose true value exceeds the
/// threshold by `margin` = q - tau, over the joint draw of a fresh rho
/// and nu: P[nu - rho >= -margin] with nu ~ Lap(a), rho ~ Lap(b). Closed
/// form of the Laplace-difference tail (a != b):
///
///   P[nu - rho >= t] = (a^2 e^{-t/a} - b^2 e^{-t/b}) / (2 (a^2 - b^2))
///
/// for t >= 0, mirrored for t < 0; the a == b limit is
/// (2a + t) e^{-t/a} / (4a). The statistical acceptance tests pin the
/// engine's observed verdict rates against this function.
Result<double> SvtAboveProbability(double margin, const SvtConfig& config);

/// The sparse-vector engine for one session. Not thread-safe: the
/// session layer (src/service/svt_session.h) serialises access.
class SvtEngine {
 public:
  /// Validates `config`, draws the initial noisy threshold from `rng`.
  static Result<SvtEngine> Create(const SvtConfig& config, Rng rng);

  /// Answers one query with true value `query_value`. Below-threshold
  /// answers are unlimited; after `max_positives` ABOVE answers the
  /// engine is exhausted and every further call returns
  /// StatusCode::kBudgetExhausted.
  Result<SvtAnswer> Process(double query_value);

  const SvtConfig& config() const { return config_; }
  std::size_t positives_spent() const { return positives_; }
  std::size_t remaining_positives() const {
    return config_.max_positives - positives_;
  }
  /// Queries answered (either verdict); refused calls do not count.
  std::uint64_t queries_answered() const { return answered_; }
  std::uint64_t below_answered() const { return answered_ - positives_; }
  bool exhausted() const { return positives_ >= config_.max_positives; }

 private:
  SvtEngine(const SvtConfig& config, Rng rng, double threshold_scale,
            double query_scale);

  void ResampleThreshold();

  SvtConfig config_;
  Rng rng_;
  double threshold_scale_;
  double query_scale_;
  double noisy_threshold_;
  std::size_t positives_ = 0;
  std::uint64_t answered_ = 0;
};

}  // namespace dp
}  // namespace gupt

#endif  // GUPT_DP_SVT_H_
