// PINQ-style low-level differentially private operators.
//
// PINQ (McSherry, SIGMOD 2009) exposes a small set of primitives — noisy
// count, noisy sum/average, partition, exponential choice — from which the
// analyst composes a private program, paying budget per operation. GUPT's
// evaluation compares against exactly this style of runtime (paper §7.1.2),
// so the primitives live here in the DP substrate and the PINQ baseline in
// src/baselines wires them to an accountant.

#ifndef GUPT_DP_NOISY_OPS_H_
#define GUPT_DP_NOISY_OPS_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"

namespace gupt {
namespace dp {

/// Noisy cardinality: |values| + Lap(1/epsilon). Count has sensitivity 1.
Result<double> NoisyCount(std::size_t count, double epsilon, Rng* rng);

/// Noisy sum of values clamped into [lo, hi]. Sensitivity is
/// max(|lo|, |hi|), the largest contribution one record can make.
Result<double> NoisySum(const std::vector<double>& values, double lo,
                        double hi, double epsilon, Rng* rng);

/// Noisy mean of values clamped into [lo, hi], computed as the standard
/// PINQ NoisyAverage: clamp, average, then add Lap((hi-lo) / (n*epsilon)).
/// Requires a public (non-noisy) record count n > 0.
Result<double> NoisyAverage(const std::vector<double>& values, double lo,
                            double hi, double epsilon, Rng* rng);

/// Noisy per-coordinate average of rows clamped into a per-dimension box.
/// Spends `epsilon` per coordinate; callers compose across coordinates.
Result<Row> NoisyAverageRows(const std::vector<Row>& rows, const Row& lo,
                             const Row& hi, double epsilon, Rng* rng);

/// Exponential mechanism over a finite candidate set: samples index i with
/// probability proportional to exp(epsilon * score[i] / (2 * sensitivity)).
/// `sensitivity` bounds how much any one record can move any score.
Result<std::size_t> ExponentialChoice(const std::vector<double>& scores,
                                      double sensitivity, double epsilon,
                                      Rng* rng);

}  // namespace dp
}  // namespace gupt

#endif  // GUPT_DP_NOISY_OPS_H_
