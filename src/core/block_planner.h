// Optimal block-size selection (paper §4.3).
//
// Writing the number of blocks as l = n^alpha, SAF's error at a given alpha
// decomposes into an estimation term A (how far block-level outputs sit
// from the whole-data output — shrinks as blocks grow) and a noise term
// B = sqrt(2) * s / (epsilon * n^alpha) (the Laplace std-dev — shrinks as
// blocks multiply). The planner evaluates the empirical error (Eq. 2)
//
//     | mean_i f(T_i^np) - f(T^np) |  +  sqrt(2) * s / (epsilon * n^alpha)
//
// on the aged slice T^np over a grid of feasible alphas, refining the best
// grid point by hill climbing, exactly the "conventional techniques like
// hill climbing" the paper prescribes. alpha is constrained to
// [1 - log(n_np)/log(n), 1] so an aged block of size n^(1-alpha) exists.

#ifndef GUPT_CORE_BLOCK_PLANNER_H_
#define GUPT_CORE_BLOCK_PLANNER_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {

struct BlockPlannerOptions {
  /// SAF privacy budget per output dimension the real query will run with.
  double epsilon_per_dim = 1.0;
  /// Output-range width s per output dimension (the aggregation
  /// sensitivity numerator). A single value is broadcast across dims.
  std::vector<double> range_widths;
  /// Grid resolution over the feasible alpha interval.
  std::size_t grid_points = 24;
  /// Hill-climbing refinement steps around the best grid point.
  std::size_t refine_steps = 8;
};

/// The planner's choice, plus diagnostics.
struct BlockPlanChoice {
  double alpha = 0.0;
  /// Block size n^(1-alpha), rounded and clamped to [1, n].
  std::size_t block_size = 0;
  /// Number of blocks for a disjoint partition of the private data.
  std::size_t num_blocks = 0;
  /// Empirical Eq. 2 error at the chosen alpha (summed over output dims).
  double predicted_error = 0.0;
};

/// Chooses the block size for a private dataset of `private_n` rows using
/// the aged slice. Runs the program on aged blocks at each candidate size;
/// costs no privacy budget.
Result<BlockPlanChoice> PlanBlockSize(const Dataset& aged,
                                      std::size_t private_n,
                                      const ProgramFactory& factory,
                                      const BlockPlannerOptions& options,
                                      Rng* rng);

}  // namespace gupt

#endif  // GUPT_CORE_BLOCK_PLANNER_H_
