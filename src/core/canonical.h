// Canonical ordering of multi-part outputs (paper §8).
//
// When a program releases an unordered collection — k cluster centres, a
// set of rules — different blocks may emit the parts in different orders,
// and averaging misaligned parts is meaningless. The paper's remedy is to
// sort parts into a canonical form before aggregation (k-means centres by
// first coordinate). These helpers implement that for the common
// flattened-vector encoding.

#ifndef GUPT_CORE_CANONICAL_H_
#define GUPT_CORE_CANONICAL_H_

#include <cstddef>

#include "common/status.h"
#include "common/vec.h"
#include "exec/program.h"

namespace gupt {

/// Sorts the `group_size`-wide chunks of `flat` by their first element
/// (ties broken by subsequent elements), in place. `flat` must be an exact
/// multiple of group_size. This is the §8 canonicalisation for k-means
/// (group_size = centre dimension).
Status CanonicalizeGroupsByFirstElement(Row* flat, std::size_t group_size);

/// Wraps a program so its outputs are canonicalised before leaving the
/// chamber: the returned factory produces instances that run the inner
/// program and then sort its flattened output groups. Use this to make an
/// off-the-shelf clustering program SAF-aggregatable without modifying it.
ProgramFactory CanonicalizedProgram(ProgramFactory inner,
                                    std::size_t group_size);

}  // namespace gupt

#endif  // GUPT_CORE_CANONICAL_H_
