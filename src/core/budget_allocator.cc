#include "core/budget_allocator.h"

#include <cmath>

namespace gupt {
namespace {

Status ValidateProfiles(const std::vector<QueryNoiseProfile>& profiles,
                        double total_epsilon) {
  if (profiles.empty()) {
    return Status::InvalidArgument("no queries to allocate budget for");
  }
  if (!(total_epsilon > 0.0) || !std::isfinite(total_epsilon)) {
    return Status::InvalidArgument("total_epsilon must be positive and finite");
  }
  for (const QueryNoiseProfile& p : profiles) {
    if (!(p.zeta > 0.0) || !std::isfinite(p.zeta)) {
      return Status::InvalidArgument("query '" + p.label +
                                     "' has non-positive zeta");
    }
  }
  return Status::OK();
}

double ZetaSum(const std::vector<QueryNoiseProfile>& profiles) {
  double sum = 0.0;
  for (const QueryNoiseProfile& p : profiles) sum += p.zeta;
  return sum;
}

}  // namespace

double SafZeta(double range_width, std::size_t num_blocks, std::size_t gamma) {
  return std::sqrt(2.0) * static_cast<double>(gamma) * range_width /
         static_cast<double>(num_blocks);
}

Result<std::vector<double>> AllocateBudget(
    const std::vector<QueryNoiseProfile>& profiles, double total_epsilon) {
  GUPT_RETURN_IF_ERROR(ValidateProfiles(profiles, total_epsilon));
  double sum = ZetaSum(profiles);
  std::vector<double> epsilons;
  epsilons.reserve(profiles.size());
  for (const QueryNoiseProfile& p : profiles) {
    epsilons.push_back(p.zeta / sum * total_epsilon);
  }
  return epsilons;
}

Result<double> AllocatedNoiseStdDev(
    const std::vector<QueryNoiseProfile>& profiles, double total_epsilon) {
  GUPT_RETURN_IF_ERROR(ValidateProfiles(profiles, total_epsilon));
  // Query i's noise std-dev is zeta_i / epsilon_i = sum_j zeta_j / total,
  // identical for every i — that equality is the point of the scheme.
  return ZetaSum(profiles) / total_epsilon;
}

}  // namespace gupt
