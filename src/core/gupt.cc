#include "core/gupt.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "core/block_planner.h"
#include "core/budget_allocator.h"
#include "core/sample_aggregate.h"
#include "data/partitioner.h"

namespace gupt {
namespace {

/// Theorem 1 budget multiplier: the total equals multiplier * p * eps_saf.
double ModeMultiplier(RangeMode mode) {
  return mode == RangeMode::kTight ? 1.0 : 2.0;
}

/// Per-stage duration histogram, labelled by stage name.
obs::Histogram* StageHistogram(const char* stage) {
  return obs::MetricsRegistry::Get().GetHistogram(
      "gupt_runtime_stage_duration_seconds",
      "Wall time of one GUPT pipeline stage (see docs/observability.md).",
      obs::Histogram::DurationBuckets(), {{"stage", stage}});
}

/// Times one pipeline stage into both the query's trace (when present) and
/// the global per-stage histogram.
class StageScope {
 public:
  StageScope(obs::QueryTrace* trace, const char* stage)
      : trace_(trace),
        stage_(stage),
        start_(std::chrono::steady_clock::now()) {}

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  void set_ok(bool ok) { ok_ = ok; }
  void set_note(std::string note) { note_ = std::move(note); }

  ~StageScope() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    if (trace_ != nullptr) {
      obs::SpanRecord span;
      span.name = stage_;
      span.duration =
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed);
      span.ok = ok_;
      span.note = std::move(note_);
      trace_->AddSpan(std::move(span));
    }
    StageHistogram(stage_)->Observe(
        std::chrono::duration<double>(elapsed).count());
  }

 private:
  obs::QueryTrace* trace_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
  bool ok_ = true;
  std::string note_;
};

Row RangeMidpoints(const std::vector<Range>& ranges) {
  Row mid(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    mid[i] = 0.5 * (ranges[i].lo + ranges[i].hi);
  }
  return mid;
}

Status ValidateRanges(const std::vector<Range>& ranges, std::size_t arity,
                      const char* what) {
  if (ranges.size() != arity) {
    return Status::InvalidArgument(
        std::string(what) + " arity " + std::to_string(ranges.size()) +
        " does not match expected " + std::to_string(arity));
  }
  for (const Range& r : ranges) {
    if (!(r.lo <= r.hi) || !std::isfinite(r.lo) || !std::isfinite(r.hi)) {
      return Status::InvalidArgument(std::string(what) + " contains lo > hi");
    }
  }
  return Status::OK();
}

/// The loose input ranges a helper-mode query should use: the spec's, or
/// the data owner's registered ranges.
Result<std::vector<Range>> ResolveLooseInputRanges(const RegisteredDataset& ds,
                                                   const QuerySpec& spec) {
  if (!spec.range.loose_input_ranges.empty()) {
    GUPT_RETURN_IF_ERROR(ValidateRanges(spec.range.loose_input_ranges,
                                        ds.data().num_dims(),
                                        "loose input ranges"));
    return spec.range.loose_input_ranges;
  }
  if (ds.input_ranges() != nullptr) {
    return *ds.input_ranges();
  }
  return Status::InvalidArgument(
      "GUPT-helper requires loose input ranges (from the query or the data "
      "owner's registration)");
}

}  // namespace

GuptRuntime::GuptRuntime(DatasetManager* manager, GuptOptions options)
    : manager_(manager),
      options_(options),
      pool_(options.num_workers > 0
                ? std::make_unique<ThreadPool>(options.num_workers)
                : nullptr),
      computation_manager_(pool_.get(), options.chamber_policy),
      rng_(options.seed) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  metrics_.queries_ok = registry.GetCounter(
      "gupt_runtime_queries_total", "Queries executed, by outcome.",
      {{"outcome", "ok"}});
  metrics_.queries_error = registry.GetCounter(
      "gupt_runtime_queries_total", "Queries executed, by outcome.",
      {{"outcome", "error"}});
  metrics_.query_duration = registry.GetHistogram(
      "gupt_runtime_query_duration_seconds",
      "End-to-end wall time of one query (planning through release).",
      obs::Histogram::DurationBuckets());
  metrics_.epsilon_charged = registry.GetCounter(
      "gupt_dp_epsilon_charged_total",
      "Total privacy budget charged across all datasets and queries.");
  metrics_.noise_scale = registry.GetGauge(
      "gupt_dp_noise_scale",
      "Largest per-dimension Laplace scale used by the last release.");
  metrics_.block_count = registry.GetGauge(
      "gupt_dp_block_count", "Number of blocks (l) in the last query.");
  metrics_.block_size = registry.GetGauge(
      "gupt_dp_block_size_count",
      "Records per block (beta) in the last query.");
  metrics_.gamma = registry.GetGauge(
      "gupt_dp_gamma_ratio",
      "Resampling multiplicity (gamma) of the last query.");
}

Rng GuptRuntime::ForkRng() {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.Fork();
}

Result<GuptRuntime::QueryPlan> GuptRuntime::PlanQuery(
    const RegisteredDataset& ds, const QuerySpec& spec, Rng* rng,
    obs::QueryTrace* trace) const {
  if (!spec.program) {
    return Status::InvalidArgument("query has no program");
  }
  if (spec.epsilon.has_value() == spec.accuracy_goal.has_value()) {
    return Status::InvalidArgument(
        "exactly one of epsilon and accuracy_goal must be set");
  }
  if (spec.gamma == 0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  if (spec.records_per_user == 0) {
    return Status::InvalidArgument("records_per_user must be >= 1");
  }

  QueryPlan plan;
  plan.gamma = spec.gamma;
  {
    std::unique_ptr<AnalysisProgram> probe = spec.program();
    if (!probe) {
      return Status::InvalidArgument("program factory returned null");
    }
    plan.output_dims = probe->output_dims();
  }
  if (plan.output_dims == 0) {
    return Status::InvalidArgument("program declares zero output dimensions");
  }
  const std::size_t n = ds.data().num_rows();
  const std::size_t k = ds.data().num_dims();
  // Under per-dimension accounting the declared epsilon is not divided
  // across the p outputs (the paper's evaluation configuration).
  const double p = spec.accounting == BudgetAccounting::kPerDimension
                       ? 1.0
                       : static_cast<double>(plan.output_dims);
  const double multiplier = ModeMultiplier(spec.range.mode);

  // Planning-time output ranges: declared for tight/loose; for helper,
  // translated from the *loose* (public) input ranges — no privacy cost, and
  // only used for widths and fallback values, never to clamp real outputs.
  switch (spec.range.mode) {
    case RangeMode::kTight:
    case RangeMode::kLoose:
      GUPT_RETURN_IF_ERROR(ValidateRanges(spec.range.declared_ranges,
                                          plan.output_dims,
                                          "declared output ranges"));
      plan.planning_ranges = spec.range.declared_ranges;
      break;
    case RangeMode::kHelper: {
      if (!spec.range.translator) {
        return Status::InvalidArgument("GUPT-helper requires a translator");
      }
      GUPT_ASSIGN_OR_RETURN(std::vector<Range> loose_input,
                            ResolveLooseInputRanges(ds, spec));
      GUPT_ASSIGN_OR_RETURN(plan.planning_ranges,
                            spec.range.translator(loose_input));
      GUPT_RETURN_IF_ERROR(ValidateRanges(plan.planning_ranges,
                                          plan.output_dims,
                                          "translated output ranges"));
      break;
    }
  }

  std::vector<double> widths(plan.output_dims);
  for (std::size_t d = 0; d < plan.output_dims; ++d) {
    widths[d] = plan.planning_ranges[d].width();
  }

  // Block size: explicit > aged-data planner > paper default n^0.6.
  {
    StageScope stage(trace, "block_plan");
    if (spec.block_size.has_value()) {
      if (*spec.block_size == 0 || *spec.block_size > n) {
        stage.set_ok(false);
        return Status::InvalidArgument("block_size must be in [1, n]");
      }
      plan.block_size = *spec.block_size;
      stage.set_note("explicit");
    } else if (spec.optimize_block_size && ds.aged() != nullptr) {
      BlockPlannerOptions planner_options;
      // When the budget is known, plan against the SAF share; with an
      // accuracy goal the budget is solved *after* the block size, so plan
      // with a provisional unit budget (the paper sequences it the same way).
      planner_options.epsilon_per_dim =
          spec.epsilon ? *spec.epsilon / (multiplier * p) : 1.0;
      planner_options.range_widths = widths;
      Result<BlockPlanChoice> choice =
          PlanBlockSize(*ds.aged(), n, spec.program, planner_options, rng);
      if (!choice.ok()) {
        stage.set_ok(false);
        return choice.status();
      }
      plan.block_size = choice->block_size;
      stage.set_note("aged_planner");
      GUPT_LOG(kInfo) << "block planner chose beta=" << choice->block_size
                      << " (alpha=" << choice->alpha << ", predicted error "
                      << choice->predicted_error << ")";
    } else {
      std::size_t num_blocks = DefaultNumBlocks(n);
      plan.block_size = std::max<std::size_t>(1, n / num_blocks);
      stage.set_note("default_n06");
    }
    plan.block_size = std::min(plan.block_size, n);
  }

  const std::size_t blocks_per_group =
      (n + plan.block_size - 1) / plan.block_size;
  plan.num_blocks = plan.gamma * blocks_per_group;

  // Privacy budget: explicit, or solved from the accuracy goal (§5.1).
  {
    StageScope stage(trace, "budget_derive");
    if (spec.epsilon.has_value()) {
      if (!(*spec.epsilon > 0.0)) {
        stage.set_ok(false);
        return Status::InvalidArgument("epsilon must be positive");
      }
      plan.epsilon_total = *spec.epsilon;
      plan.epsilon_saf_per_dim = plan.epsilon_total / (multiplier * p);
      stage.set_note("explicit");
    } else {
      if (ds.aged() == nullptr) {
        stage.set_ok(false);
        return Status::InvalidArgument(
            "accuracy goals require an aged slice (aging-of-sensitivity "
            "model)");
      }
      if (plan.output_dims != 1) {
        stage.set_ok(false);
        return Status::InvalidArgument(
            "accuracy goals are supported for scalar-output programs");
      }
      BudgetEstimatorOptions est;
      est.goal = *spec.accuracy_goal;
      est.block_size = plan.block_size;
      est.range_width = widths[0];
      Result<BudgetEstimate> estimate =
          EstimateBudgetForAccuracy(*ds.aged(), n, spec.program, est, rng);
      if (!estimate.ok()) {
        stage.set_ok(false);
        return estimate.status();
      }
      plan.epsilon_saf_per_dim = estimate->epsilon;
      plan.epsilon_total = multiplier * p * plan.epsilon_saf_per_dim;
      stage.set_note("accuracy_goal");
    }
  }
  (void)k;
  return plan;
}

Result<QueryReport> GuptRuntime::ExecutePlanned(RegisteredDataset& ds,
                                                const QuerySpec& spec,
                                                const QueryPlan& plan,
                                                Rng* rng,
                                                obs::QueryTrace* trace) const {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = ds.data().num_rows();
  const std::size_t k = ds.data().num_dims();

  // Charge the full budget up front: a program that later misbehaves (or a
  // malicious analyst who aborts mid-query) cannot reclaim or overdraw it.
  std::string label;
  {
    std::unique_ptr<AnalysisProgram> probe = spec.program();
    label = probe->name() + " [" + RangeModeToString(spec.range.mode) + "]";
  }
  {
    StageScope stage(trace, "budget_charge");
    Status charged = ds.accountant().Charge(plan.epsilon_total, label);
    if (!charged.ok()) {
      stage.set_ok(false);
      return charged;
    }
  }
  metrics_.epsilon_charged->Increment(plan.epsilon_total);

  QueryReport report;
  report.epsilon_spent = plan.epsilon_total;
  report.epsilon_saf_per_dim = plan.epsilon_saf_per_dim;
  report.block_size = plan.block_size;
  report.gamma = plan.gamma;

  // Effective clamp ranges known before execution for tight mode; helper
  // estimates them from private inputs now (charged within epsilon_total);
  // loose refines from block outputs after execution.
  std::vector<Range> effective = plan.planning_ranges;
  if (spec.range.mode == RangeMode::kHelper) {
    StageScope stage(trace, "range_estimate");
    stage.set_note("helper_inputs");
    Result<std::vector<Range>> loose_input = ResolveLooseInputRanges(ds, spec);
    if (!loose_input.ok()) {
      stage.set_ok(false);
      return loose_input.status();
    }
    // Theorem 1: the input percentile pass gets epsilon/2 in total, split
    // evenly over the k input dimensions.
    double epsilon_per_input_dim =
        plan.epsilon_total / (2.0 * static_cast<double>(k));
    // User-level privacy scales the percentile mechanism's rank
    // sensitivity by the per-user record count (group privacy).
    epsilon_per_input_dim /= static_cast<double>(spec.records_per_user);
    Result<std::vector<Range>> estimated = EstimateRangesViaTranslator(
        ds.data(), *loose_input, spec.range.translator, epsilon_per_input_dim,
        plan.output_dims, rng, spec.range.lower_percentile,
        spec.range.upper_percentile);
    if (!estimated.ok()) {
      stage.set_ok(false);
      return estimated.status();
    }
    effective = std::move(estimated).value();
  }

  // The constant substituted for killed/failed blocks must be data
  // independent and inside the expected output range (§6.2): use the
  // midpoint of the pre-execution planning ranges.
  Row fallback = RangeMidpoints(plan.planning_ranges);

  BlockPlan partition;
  {
    StageScope stage(trace, "partition");
    Result<BlockPlan> partitioned =
        plan.gamma > 1
            ? PartitionResampled(n, plan.block_size, plan.gamma, rng)
            : PartitionDisjoint(
                  n,
                  std::max<std::size_t>(1, std::min(plan.num_blocks, n)),
                  rng);
    if (!partitioned.ok()) {
      stage.set_ok(false);
      return partitioned.status();
    }
    partition = std::move(partitioned).value();
    stage.set_note("l=" + std::to_string(partition.num_blocks()) +
                   " beta=" + std::to_string(plan.block_size));
  }
  report.num_blocks = partition.num_blocks();

  BlockExecutionReport exec_report;
  {
    StageScope stage(trace, "execute_blocks");
    Result<BlockExecutionReport> executed = computation_manager_.ExecuteOnBlocks(
        spec.program, ds.data(), partition, fallback);
    if (!executed.ok()) {
      stage.set_ok(false);
      return executed.status();
    }
    exec_report = std::move(executed).value();
    if (exec_report.fallback_count > 0) {
      stage.set_note("fallbacks=" + std::to_string(exec_report.fallback_count));
    }
  }
  report.fallback_blocks = exec_report.fallback_count;
  report.deadline_exceeded_blocks = exec_report.deadline_exceeded_count;
  report.policy_violations = exec_report.policy_violation_count;
  if (report.fallback_blocks > 0 || report.policy_violations > 0) {
    GUPT_LOG(kWarning) << "query '" << label << "': "
                       << report.fallback_blocks << "/" << report.num_blocks
                       << " blocks fell back ("
                       << report.deadline_exceeded_blocks
                       << " killed at the cycle budget), "
                       << report.policy_violations << " policy violations";
  }

  std::vector<Row> outputs = exec_report.Outputs();
  if (spec.range.mode == RangeMode::kLoose) {
    StageScope stage(trace, "range_estimate");
    stage.set_note("loose_outputs");
    // Theorem 1: epsilon/(2p) per output dimension for the percentile pass
    // (just epsilon/2 under per-dimension accounting).
    double p_eff = spec.accounting == BudgetAccounting::kPerDimension
                       ? 1.0
                       : static_cast<double>(plan.output_dims);
    double epsilon_per_output_dim = plan.epsilon_total / (2.0 * p_eff);
    Result<std::vector<Range>> estimated = EstimateRangesFromBlockOutputs(
        outputs, spec.range.declared_ranges, epsilon_per_output_dim,
        plan.gamma * spec.records_per_user, rng, spec.range.lower_percentile,
        spec.range.upper_percentile);
    if (!estimated.ok()) {
      stage.set_ok(false);
      return estimated.status();
    }
    effective = std::move(estimated).value();
  }

  AggregateOptions agg;
  agg.epsilon_per_dim = plan.epsilon_saf_per_dim;
  agg.output_ranges = effective;
  // One *user* touches at most gamma * records_per_user blocks, so the
  // aggregation's sensitivity multiplier is their product (group privacy).
  agg.gamma = plan.gamma * spec.records_per_user;

  Row averages;
  {
    StageScope stage(trace, "clamp_average");
    Result<Row> averaged = ClampAndAverage(outputs, agg.output_ranges);
    if (!averaged.ok()) {
      stage.set_ok(false);
      return averaged.status();
    }
    averages = std::move(averaged).value();
  }

  AggregateResult aggregate;
  {
    StageScope stage(trace, "noise");
    Result<AggregateResult> noised =
        AddAggregationNoise(averages, agg, outputs.size(), rng);
    if (!noised.ok()) {
      stage.set_ok(false);
      return noised.status();
    }
    aggregate = std::move(noised).value();
  }

  double max_noise_scale = 0.0;
  for (double scale : aggregate.noise_scale) {
    max_noise_scale = std::max(max_noise_scale, scale);
  }
  metrics_.noise_scale->Set(max_noise_scale);
  metrics_.block_count->Set(static_cast<double>(report.num_blocks));
  metrics_.block_size->Set(static_cast<double>(report.block_size));
  metrics_.gamma->Set(static_cast<double>(report.gamma));
  if (trace != nullptr) {
    trace->SetGauge("epsilon_charged", plan.epsilon_total);
    trace->SetGauge("epsilon_saf_per_dim", plan.epsilon_saf_per_dim);
    trace->SetGauge("noise_scale", max_noise_scale);
    trace->SetGauge("block_count", static_cast<double>(report.num_blocks));
    trace->SetGauge("block_size", static_cast<double>(report.block_size));
    trace->SetGauge("gamma", static_cast<double>(report.gamma));
    trace->SetGauge("fallback_blocks",
                    static_cast<double>(report.fallback_blocks));
    trace->SetGauge("deadline_exceeded_blocks",
                    static_cast<double>(report.deadline_exceeded_blocks));
    trace->SetGauge("policy_violations",
                    static_cast<double>(report.policy_violations));
  }

  report.output = std::move(aggregate.output);
  report.effective_ranges = std::move(effective);
  report.elapsed = std::chrono::steady_clock::now() - start;
  return report;
}

Result<QueryReport> GuptRuntime::ExecuteTraced(RegisteredDataset& ds,
                                               const QuerySpec& spec,
                                               const QueryPlan& plan, Rng* rng,
                                               obs::QueryTrace* trace) const {
  const auto start = std::chrono::steady_clock::now();
  Result<QueryReport> report = ExecutePlanned(ds, spec, plan, rng, trace);
  metrics_.query_duration->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  (report.ok() ? metrics_.queries_ok : metrics_.queries_error)->Increment();
  if (report.ok() && trace != nullptr) {
    report->trace = std::move(*trace);
  }
  return report;
}

Result<QueryReport> GuptRuntime::Execute(const std::string& dataset_name,
                                         const QuerySpec& spec) {
  GUPT_ASSIGN_OR_RETURN(std::shared_ptr<RegisteredDataset> ds,
                        manager_->Get(dataset_name));
  Rng rng = ForkRng();
  obs::QueryTrace trace;
  Result<QueryPlan> plan = PlanQuery(*ds, spec, &rng, &trace);
  if (!plan.ok()) {
    metrics_.queries_error->Increment();
    return plan.status();
  }
  return ExecuteTraced(*ds, spec, *plan, &rng, &trace);
}

Result<std::vector<QueryReport>> GuptRuntime::ExecuteWithSharedBudget(
    const std::string& dataset_name, const std::vector<QuerySpec>& specs,
    double total_epsilon) {
  if (specs.empty()) {
    return Status::InvalidArgument("no queries in the batch");
  }
  GUPT_ASSIGN_OR_RETURN(std::shared_ptr<RegisteredDataset> ds,
                        manager_->Get(dataset_name));

  // Plan every query with a provisional unit budget to learn its block
  // geometry and range widths; zeta then determines the allocation (§5.2).
  std::vector<QueryPlan> plans;
  std::vector<QueryNoiseProfile> profiles;
  plans.reserve(specs.size());
  profiles.reserve(specs.size());
  Rng rng = ForkRng();
  for (const QuerySpec& spec : specs) {
    if (spec.epsilon.has_value() || spec.accuracy_goal.has_value()) {
      return Status::InvalidArgument(
          "shared-budget queries must leave epsilon and accuracy_goal unset");
    }
    QuerySpec provisional = spec;
    provisional.epsilon = 1.0;
    // Provisional planning carries no trace: only the real execution's
    // plan decisions are part of a query's story.
    GUPT_ASSIGN_OR_RETURN(QueryPlan plan,
                          PlanQuery(*ds, provisional, &rng, nullptr));

    double max_width = 0.0;
    for (const Range& r : plan.planning_ranges) {
      max_width = std::max(max_width, r.width());
    }
    QueryNoiseProfile profile;
    {
      std::unique_ptr<AnalysisProgram> probe = spec.program();
      profile.label = probe->name();
    }
    // Weight = multiplier * p * zeta so the resulting *total* epsilons give
    // every query the same SAF noise std-dev (see budget_allocator.h).
    double p_eff = spec.accounting == BudgetAccounting::kPerDimension
                       ? 1.0
                       : static_cast<double>(plan.output_dims);
    profile.zeta = ModeMultiplier(spec.range.mode) * p_eff *
                   SafZeta(max_width, plan.num_blocks, plan.gamma);
    profiles.push_back(std::move(profile));
    plans.push_back(std::move(plan));
  }

  GUPT_ASSIGN_OR_RETURN(std::vector<double> epsilons,
                        AllocateBudget(profiles, total_epsilon));

  std::vector<QueryReport> reports;
  reports.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    QueryPlan plan = plans[i];
    double multiplier = ModeMultiplier(specs[i].range.mode);
    double p_eff = specs[i].accounting == BudgetAccounting::kPerDimension
                       ? 1.0
                       : static_cast<double>(plan.output_dims);
    plan.epsilon_total = epsilons[i];
    plan.epsilon_saf_per_dim = epsilons[i] / (multiplier * p_eff);
    obs::QueryTrace trace;
    GUPT_ASSIGN_OR_RETURN(QueryReport report,
                          ExecuteTraced(*ds, specs[i], plan, &rng, &trace));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace gupt
