#include "core/gupt.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "core/block_planner.h"
#include "core/budget_allocator.h"
#include "core/sample_aggregate.h"
#include "data/partitioner.h"

namespace gupt {
namespace {

/// Theorem 1 budget multiplier: the total equals multiplier * p * eps_saf.
double ModeMultiplier(RangeMode mode) {
  return mode == RangeMode::kTight ? 1.0 : 2.0;
}

Row RangeMidpoints(const std::vector<Range>& ranges) {
  Row mid(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    mid[i] = 0.5 * (ranges[i].lo + ranges[i].hi);
  }
  return mid;
}

Status ValidateRanges(const std::vector<Range>& ranges, std::size_t arity,
                      const char* what) {
  if (ranges.size() != arity) {
    return Status::InvalidArgument(
        std::string(what) + " arity " + std::to_string(ranges.size()) +
        " does not match expected " + std::to_string(arity));
  }
  for (const Range& r : ranges) {
    if (!(r.lo <= r.hi) || !std::isfinite(r.lo) || !std::isfinite(r.hi)) {
      return Status::InvalidArgument(std::string(what) + " contains lo > hi");
    }
  }
  return Status::OK();
}

/// The loose input ranges a helper-mode query should use: the spec's, or
/// the data owner's registered ranges.
Result<std::vector<Range>> ResolveLooseInputRanges(const RegisteredDataset& ds,
                                                   const QuerySpec& spec) {
  if (!spec.range.loose_input_ranges.empty()) {
    GUPT_RETURN_IF_ERROR(ValidateRanges(spec.range.loose_input_ranges,
                                        ds.data().num_dims(),
                                        "loose input ranges"));
    return spec.range.loose_input_ranges;
  }
  if (ds.input_ranges() != nullptr) {
    return *ds.input_ranges();
  }
  return Status::InvalidArgument(
      "GUPT-helper requires loose input ranges (from the query or the data "
      "owner's registration)");
}

}  // namespace

GuptRuntime::GuptRuntime(DatasetManager* manager, GuptOptions options)
    : manager_(manager),
      options_(options),
      pool_(options.num_workers > 0
                ? std::make_unique<ThreadPool>(options.num_workers)
                : nullptr),
      computation_manager_(pool_.get(), options.chamber_policy),
      rng_(options.seed) {}

Rng GuptRuntime::ForkRng() {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.Fork();
}

Result<GuptRuntime::QueryPlan> GuptRuntime::PlanQuery(
    const RegisteredDataset& ds, const QuerySpec& spec, Rng* rng) const {
  if (!spec.program) {
    return Status::InvalidArgument("query has no program");
  }
  if (spec.epsilon.has_value() == spec.accuracy_goal.has_value()) {
    return Status::InvalidArgument(
        "exactly one of epsilon and accuracy_goal must be set");
  }
  if (spec.gamma == 0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  if (spec.records_per_user == 0) {
    return Status::InvalidArgument("records_per_user must be >= 1");
  }

  QueryPlan plan;
  plan.gamma = spec.gamma;
  {
    std::unique_ptr<AnalysisProgram> probe = spec.program();
    if (!probe) {
      return Status::InvalidArgument("program factory returned null");
    }
    plan.output_dims = probe->output_dims();
  }
  if (plan.output_dims == 0) {
    return Status::InvalidArgument("program declares zero output dimensions");
  }
  const std::size_t n = ds.data().num_rows();
  const std::size_t k = ds.data().num_dims();
  // Under per-dimension accounting the declared epsilon is not divided
  // across the p outputs (the paper's evaluation configuration).
  const double p = spec.accounting == BudgetAccounting::kPerDimension
                       ? 1.0
                       : static_cast<double>(plan.output_dims);
  const double multiplier = ModeMultiplier(spec.range.mode);

  // Planning-time output ranges: declared for tight/loose; for helper,
  // translated from the *loose* (public) input ranges — no privacy cost, and
  // only used for widths and fallback values, never to clamp real outputs.
  switch (spec.range.mode) {
    case RangeMode::kTight:
    case RangeMode::kLoose:
      GUPT_RETURN_IF_ERROR(ValidateRanges(spec.range.declared_ranges,
                                          plan.output_dims,
                                          "declared output ranges"));
      plan.planning_ranges = spec.range.declared_ranges;
      break;
    case RangeMode::kHelper: {
      if (!spec.range.translator) {
        return Status::InvalidArgument("GUPT-helper requires a translator");
      }
      GUPT_ASSIGN_OR_RETURN(std::vector<Range> loose_input,
                            ResolveLooseInputRanges(ds, spec));
      GUPT_ASSIGN_OR_RETURN(plan.planning_ranges,
                            spec.range.translator(loose_input));
      GUPT_RETURN_IF_ERROR(ValidateRanges(plan.planning_ranges,
                                          plan.output_dims,
                                          "translated output ranges"));
      break;
    }
  }

  std::vector<double> widths(plan.output_dims);
  for (std::size_t d = 0; d < plan.output_dims; ++d) {
    widths[d] = plan.planning_ranges[d].width();
  }

  // Block size: explicit > aged-data planner > paper default n^0.6.
  if (spec.block_size.has_value()) {
    if (*spec.block_size == 0 || *spec.block_size > n) {
      return Status::InvalidArgument("block_size must be in [1, n]");
    }
    plan.block_size = *spec.block_size;
  } else if (spec.optimize_block_size && ds.aged() != nullptr) {
    BlockPlannerOptions planner_options;
    // When the budget is known, plan against the SAF share; with an
    // accuracy goal the budget is solved *after* the block size, so plan
    // with a provisional unit budget (the paper sequences it the same way).
    planner_options.epsilon_per_dim =
        spec.epsilon ? *spec.epsilon / (multiplier * p) : 1.0;
    planner_options.range_widths = widths;
    GUPT_ASSIGN_OR_RETURN(
        BlockPlanChoice choice,
        PlanBlockSize(*ds.aged(), n, spec.program, planner_options, rng));
    plan.block_size = choice.block_size;
    GUPT_LOG(kInfo) << "block planner chose beta=" << choice.block_size
                    << " (alpha=" << choice.alpha << ", predicted error "
                    << choice.predicted_error << ")";
  } else {
    std::size_t num_blocks = DefaultNumBlocks(n);
    plan.block_size = std::max<std::size_t>(1, n / num_blocks);
  }
  plan.block_size = std::min(plan.block_size, n);

  const std::size_t blocks_per_group =
      (n + plan.block_size - 1) / plan.block_size;
  plan.num_blocks = plan.gamma * blocks_per_group;

  // Privacy budget: explicit, or solved from the accuracy goal (§5.1).
  if (spec.epsilon.has_value()) {
    if (!(*spec.epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    plan.epsilon_total = *spec.epsilon;
    plan.epsilon_saf_per_dim = plan.epsilon_total / (multiplier * p);
  } else {
    if (ds.aged() == nullptr) {
      return Status::InvalidArgument(
          "accuracy goals require an aged slice (aging-of-sensitivity model)");
    }
    if (plan.output_dims != 1) {
      return Status::InvalidArgument(
          "accuracy goals are supported for scalar-output programs");
    }
    BudgetEstimatorOptions est;
    est.goal = *spec.accuracy_goal;
    est.block_size = plan.block_size;
    est.range_width = widths[0];
    GUPT_ASSIGN_OR_RETURN(
        BudgetEstimate estimate,
        EstimateBudgetForAccuracy(*ds.aged(), n, spec.program, est, rng));
    plan.epsilon_saf_per_dim = estimate.epsilon;
    plan.epsilon_total = multiplier * p * plan.epsilon_saf_per_dim;
  }
  (void)k;
  return plan;
}

Result<QueryReport> GuptRuntime::ExecutePlanned(RegisteredDataset& ds,
                                                const QuerySpec& spec,
                                                const QueryPlan& plan,
                                                Rng* rng) const {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = ds.data().num_rows();
  const std::size_t k = ds.data().num_dims();

  // Charge the full budget up front: a program that later misbehaves (or a
  // malicious analyst who aborts mid-query) cannot reclaim or overdraw it.
  std::string label;
  {
    std::unique_ptr<AnalysisProgram> probe = spec.program();
    label = probe->name() + " [" + RangeModeToString(spec.range.mode) + "]";
  }
  GUPT_RETURN_IF_ERROR(ds.accountant().Charge(plan.epsilon_total, label));

  QueryReport report;
  report.epsilon_spent = plan.epsilon_total;
  report.epsilon_saf_per_dim = plan.epsilon_saf_per_dim;
  report.block_size = plan.block_size;
  report.gamma = plan.gamma;

  // Effective clamp ranges known before execution for tight mode; helper
  // estimates them from private inputs now (charged within epsilon_total);
  // loose refines from block outputs after execution.
  std::vector<Range> effective = plan.planning_ranges;
  if (spec.range.mode == RangeMode::kHelper) {
    GUPT_ASSIGN_OR_RETURN(std::vector<Range> loose_input,
                          ResolveLooseInputRanges(ds, spec));
    // Theorem 1: the input percentile pass gets epsilon/2 in total, split
    // evenly over the k input dimensions.
    double epsilon_per_input_dim =
        plan.epsilon_total / (2.0 * static_cast<double>(k));
    // User-level privacy scales the percentile mechanism's rank
    // sensitivity by the per-user record count (group privacy).
    epsilon_per_input_dim /= static_cast<double>(spec.records_per_user);
    GUPT_ASSIGN_OR_RETURN(
        effective,
        EstimateRangesViaTranslator(
            ds.data(), loose_input, spec.range.translator,
            epsilon_per_input_dim, plan.output_dims, rng,
            spec.range.lower_percentile, spec.range.upper_percentile));
  }

  // The constant substituted for killed/failed blocks must be data
  // independent and inside the expected output range (§6.2): use the
  // midpoint of the pre-execution planning ranges.
  Row fallback = RangeMidpoints(plan.planning_ranges);

  BlockPlan partition;
  if (plan.gamma > 1) {
    GUPT_ASSIGN_OR_RETURN(
        partition, PartitionResampled(n, plan.block_size, plan.gamma, rng));
  } else {
    std::size_t num_blocks = std::max<std::size_t>(
        1, std::min(plan.num_blocks, n));
    GUPT_ASSIGN_OR_RETURN(partition, PartitionDisjoint(n, num_blocks, rng));
  }
  report.num_blocks = partition.num_blocks();

  GUPT_ASSIGN_OR_RETURN(
      BlockExecutionReport exec_report,
      computation_manager_.ExecuteOnBlocks(spec.program, ds.data(), partition,
                                           fallback));
  report.fallback_blocks = exec_report.fallback_count;
  report.deadline_exceeded_blocks = exec_report.deadline_exceeded_count;
  report.policy_violations = exec_report.policy_violation_count;
  if (report.fallback_blocks > 0 || report.policy_violations > 0) {
    GUPT_LOG(kWarning) << "query '" << label << "': "
                       << report.fallback_blocks << "/" << report.num_blocks
                       << " blocks fell back ("
                       << report.deadline_exceeded_blocks
                       << " killed at the cycle budget), "
                       << report.policy_violations << " policy violations";
  }

  std::vector<Row> outputs = exec_report.Outputs();
  if (spec.range.mode == RangeMode::kLoose) {
    // Theorem 1: epsilon/(2p) per output dimension for the percentile pass
    // (just epsilon/2 under per-dimension accounting).
    double p_eff = spec.accounting == BudgetAccounting::kPerDimension
                       ? 1.0
                       : static_cast<double>(plan.output_dims);
    double epsilon_per_output_dim = plan.epsilon_total / (2.0 * p_eff);
    GUPT_ASSIGN_OR_RETURN(
        effective,
        EstimateRangesFromBlockOutputs(
            outputs, spec.range.declared_ranges, epsilon_per_output_dim,
            plan.gamma * spec.records_per_user, rng,
            spec.range.lower_percentile, spec.range.upper_percentile));
  }

  AggregateOptions agg;
  agg.epsilon_per_dim = plan.epsilon_saf_per_dim;
  agg.output_ranges = effective;
  // One *user* touches at most gamma * records_per_user blocks, so the
  // aggregation's sensitivity multiplier is their product (group privacy).
  agg.gamma = plan.gamma * spec.records_per_user;
  GUPT_ASSIGN_OR_RETURN(AggregateResult aggregate,
                        AggregateBlockOutputs(outputs, agg, rng));

  report.output = std::move(aggregate.output);
  report.effective_ranges = std::move(effective);
  report.elapsed = std::chrono::steady_clock::now() - start;
  return report;
}

Result<QueryReport> GuptRuntime::Execute(const std::string& dataset_name,
                                         const QuerySpec& spec) {
  GUPT_ASSIGN_OR_RETURN(std::shared_ptr<RegisteredDataset> ds,
                        manager_->Get(dataset_name));
  Rng rng = ForkRng();
  GUPT_ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(*ds, spec, &rng));
  return ExecutePlanned(*ds, spec, plan, &rng);
}

Result<std::vector<QueryReport>> GuptRuntime::ExecuteWithSharedBudget(
    const std::string& dataset_name, const std::vector<QuerySpec>& specs,
    double total_epsilon) {
  if (specs.empty()) {
    return Status::InvalidArgument("no queries in the batch");
  }
  GUPT_ASSIGN_OR_RETURN(std::shared_ptr<RegisteredDataset> ds,
                        manager_->Get(dataset_name));

  // Plan every query with a provisional unit budget to learn its block
  // geometry and range widths; zeta then determines the allocation (§5.2).
  std::vector<QueryPlan> plans;
  std::vector<QueryNoiseProfile> profiles;
  plans.reserve(specs.size());
  profiles.reserve(specs.size());
  Rng rng = ForkRng();
  for (const QuerySpec& spec : specs) {
    if (spec.epsilon.has_value() || spec.accuracy_goal.has_value()) {
      return Status::InvalidArgument(
          "shared-budget queries must leave epsilon and accuracy_goal unset");
    }
    QuerySpec provisional = spec;
    provisional.epsilon = 1.0;
    GUPT_ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(*ds, provisional, &rng));

    double max_width = 0.0;
    for (const Range& r : plan.planning_ranges) {
      max_width = std::max(max_width, r.width());
    }
    QueryNoiseProfile profile;
    {
      std::unique_ptr<AnalysisProgram> probe = spec.program();
      profile.label = probe->name();
    }
    // Weight = multiplier * p * zeta so the resulting *total* epsilons give
    // every query the same SAF noise std-dev (see budget_allocator.h).
    double p_eff = spec.accounting == BudgetAccounting::kPerDimension
                       ? 1.0
                       : static_cast<double>(plan.output_dims);
    profile.zeta = ModeMultiplier(spec.range.mode) * p_eff *
                   SafZeta(max_width, plan.num_blocks, plan.gamma);
    profiles.push_back(std::move(profile));
    plans.push_back(std::move(plan));
  }

  GUPT_ASSIGN_OR_RETURN(std::vector<double> epsilons,
                        AllocateBudget(profiles, total_epsilon));

  std::vector<QueryReport> reports;
  reports.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    QueryPlan plan = plans[i];
    double multiplier = ModeMultiplier(specs[i].range.mode);
    double p_eff = specs[i].accounting == BudgetAccounting::kPerDimension
                       ? 1.0
                       : static_cast<double>(plan.output_dims);
    plan.epsilon_total = epsilons[i];
    plan.epsilon_saf_per_dim = epsilons[i] / (multiplier * p_eff);
    GUPT_ASSIGN_OR_RETURN(QueryReport report,
                          ExecutePlanned(*ds, specs[i], plan, &rng));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace gupt
