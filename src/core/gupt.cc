#include "core/gupt.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "core/budget_allocator.h"
#include "dp/amplification.h"

namespace gupt {

GuptRuntime::GuptRuntime(DatasetManager* manager, GuptOptions options)
    : manager_(manager),
      options_(options),
      pool_(options.num_workers > 0
                ? std::make_unique<ThreadPool>(options.num_workers)
                : nullptr),
      computation_manager_(pool_.get(), options.chamber_policy,
                           options.chamber_pool),
      pipeline_(&computation_manager_),
      rng_(options.seed) {}

Rng GuptRuntime::ForkRng() {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.Fork();
}

Result<QueryReport> GuptRuntime::Execute(const std::string& dataset_name,
                                         const QuerySpec& spec) {
  GUPT_ASSIGN_OR_RETURN(std::shared_ptr<RegisteredDataset> ds,
                        manager_->Get(dataset_name));
  Rng rng = ForkRng();
  obs::QueryTrace trace;
  trace.set_query_id(obs::NextQueryId());
  // Log lines emitted on this (coordinator) thread during the pipeline
  // walk carry the query id, joinable against the trace and audit record.
  ScopedLogQueryId log_scope(trace.query_id());
  QueryContext ctx(*ds, spec, &rng, &trace);
  return pipeline_.Run(ctx);
}

Result<std::vector<QueryReport>> GuptRuntime::ExecuteWithSharedBudget(
    const std::string& dataset_name, const std::vector<QuerySpec>& specs,
    double total_epsilon) {
  if (specs.empty()) {
    return Status::InvalidArgument("no queries in the batch");
  }
  GUPT_ASSIGN_OR_RETURN(std::shared_ptr<RegisteredDataset> ds,
                        manager_->Get(dataset_name));

  // Plan every query with a provisional unit budget to learn its block
  // geometry and range widths; zeta then determines the allocation (§5.2).
  std::vector<QueryPlan> plans;
  std::vector<QueryNoiseProfile> profiles;
  plans.reserve(specs.size());
  profiles.reserve(specs.size());
  Rng rng = ForkRng();
  for (const QuerySpec& spec : specs) {
    if (spec.epsilon.has_value() || spec.accuracy_goal.has_value()) {
      return Status::InvalidArgument(
          "shared-budget queries must leave epsilon and accuracy_goal unset");
    }
    if (spec.amplification != dp::AmplificationMode::kOff) {
      // The allocator owns every slice's epsilon, so neither amplification
      // mode has a well-defined meaning here: the analyst controls neither
      // the raw calibration nor the charge. Reject rather than silently
      // degrade to different semantics than a standalone query would get.
      return Status::InvalidArgument(
          "shared-budget queries do not support amplification; run the "
          "query standalone with an explicit epsilon");
    }
    QuerySpec provisional = spec;
    provisional.epsilon = 1.0;
    // Provisional planning carries no trace: only the real execution's
    // plan decisions are part of a query's story.
    QueryContext plan_ctx(*ds, provisional, &rng, nullptr);
    GUPT_ASSIGN_OR_RETURN(QueryPlan plan, pipeline_.Plan(plan_ctx));

    double max_width = 0.0;
    for (const Range& r : plan.planning_ranges) {
      max_width = std::max(max_width, r.width());
    }
    QueryNoiseProfile profile;
    {
      std::unique_ptr<AnalysisProgram> probe = spec.program();
      profile.label = probe->name();
    }
    // Weight = multiplier * p * zeta so the resulting *total* epsilons give
    // every query the same SAF noise std-dev (see budget_allocator.h).
    profile.zeta = ModeMultiplier(spec.range.mode) *
                   EffectiveOutputDims(spec, plan.output_dims) *
                   SafZeta(max_width, plan.num_blocks, plan.gamma);
    profiles.push_back(std::move(profile));
    plans.push_back(std::move(plan));
  }

  GUPT_ASSIGN_OR_RETURN(std::vector<double> epsilons,
                        AllocateBudget(profiles, total_epsilon));

  // Re-enter the shared pipeline with the allocator-derived epsilons:
  // AdmitStage charges each query exactly its allocation, and PlanStage
  // passes through because the plan is already resolved.
  std::vector<QueryReport> reports;
  reports.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    obs::QueryTrace trace;
    trace.set_query_id(obs::NextQueryId());
    ScopedLogQueryId log_scope(trace.query_id());
    QueryContext ctx(*ds, specs[i], &rng, &trace);
    ctx.plan = plans[i];
    ctx.plan.epsilon_total = epsilons[i];
    ctx.plan.epsilon_saf_per_dim =
        epsilons[i] / (ModeMultiplier(specs[i].range.mode) *
                       EffectiveOutputDims(specs[i], plans[i].output_dims));
    // Amplification is rejected above, so each slice's ledger debit is
    // exactly its allocation.
    ctx.plan.epsilon_charged = ctx.plan.epsilon_total;
    ctx.plan_resolved = true;
    GUPT_ASSIGN_OR_RETURN(QueryReport report, pipeline_.Run(ctx));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace gupt
