// Aging-of-sensitivity support (paper §3.3).
//
// Under the aging model, a slice of the dataset is old enough that its
// privacy has lapsed; GUPT inspects that slice *in the clear* to learn
// general trends — the empirical estimation error at a candidate block
// size, the variance of per-block outputs, the rough magnitude of the
// answer — and uses them to tune block size (§4.3) and privacy budget
// (§5.1, §5.2) for queries against the still-private remainder. None of
// these computations touch private rows, so they cost no budget.

#ifndef GUPT_CORE_AGING_H_
#define GUPT_CORE_AGING_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {

/// Statistics from running a program over an aged (non-private) dataset,
/// both whole and partitioned into blocks of a candidate size.
struct AgedRunStats {
  /// f(T_np): the program's output on the entire aged slice.
  Row whole_output;
  /// Per-block outputs f(T_i_np) at the candidate block size.
  std::vector<Row> block_outputs;
  /// Per-dimension mean of the block outputs.
  Row block_mean;
  /// Per-dimension population variance of the block outputs.
  Row block_variance;

  std::size_t num_blocks() const { return block_outputs.size(); }
};

/// Runs `factory`'s program on the whole aged slice and on a random
/// disjoint partition into blocks of `block_size` rows, collecting the
/// statistics the block planner (Eq. 2) and budget estimator (Eq. 3) need.
/// Blocks that fail to run are skipped (the aged slice is a training
/// signal, not a privacy surface); errors only when nothing can run at all
/// or the arguments are invalid.
Result<AgedRunStats> ComputeAgedRunStats(const Dataset& aged,
                                         const ProgramFactory& factory,
                                         std::size_t block_size, Rng* rng);

/// |f(T_np)| per output dimension: the magnitude scale used to convert a
/// *relative* accuracy goal into an absolute noise budget (§5.1).
Result<Row> EstimateQueryMagnitude(const Dataset& aged,
                                   const ProgramFactory& factory);

}  // namespace gupt

#endif  // GUPT_CORE_AGING_H_
