#include "core/block_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/aging.h"

namespace gupt {
namespace {

// Evaluates Eq. 2 at one alpha: empirical estimation error on the aged
// slice plus the Laplace noise std-dev the real run would incur, summed
// over output dimensions. Returns +inf when the candidate is infeasible.
Result<double> EvaluateAlpha(double alpha, const Dataset& aged,
                             std::size_t private_n,
                             const ProgramFactory& factory,
                             const std::vector<double>& range_widths,
                             double epsilon_per_dim, Rng* rng) {
  double n = static_cast<double>(private_n);
  double block_size_real = std::pow(n, 1.0 - alpha);
  auto block_size = static_cast<std::size_t>(std::llround(block_size_real));
  block_size = std::clamp<std::size_t>(block_size, 1, aged.num_rows());

  GUPT_ASSIGN_OR_RETURN(AgedRunStats stats,
                        ComputeAgedRunStats(aged, factory, block_size, rng));
  const std::size_t dims = stats.whole_output.size();
  if (range_widths.size() != dims && range_widths.size() != 1) {
    return Status::InvalidArgument(
        "range_widths arity must be 1 or match output dims");
  }

  double total = 0.0;
  double num_blocks_real = std::pow(n, alpha);
  for (std::size_t d = 0; d < dims; ++d) {
    double width = range_widths[range_widths.size() == 1 ? 0 : d];
    double estimation =
        std::fabs(stats.block_mean[d] - stats.whole_output[d]);
    double noise = std::sqrt(2.0) * width / (epsilon_per_dim * num_blocks_real);
    total += estimation + noise;
  }
  return total;
}

}  // namespace

Result<BlockPlanChoice> PlanBlockSize(const Dataset& aged,
                                      std::size_t private_n,
                                      const ProgramFactory& factory,
                                      const BlockPlannerOptions& options,
                                      Rng* rng) {
  if (private_n < 2) {
    return Status::InvalidArgument("private dataset too small to plan for");
  }
  if (aged.num_rows() == 0) {
    return Status::InvalidArgument("aged slice is empty");
  }
  if (!(options.epsilon_per_dim > 0.0)) {
    return Status::InvalidArgument("epsilon_per_dim must be positive");
  }
  if (options.range_widths.empty()) {
    return Status::InvalidArgument("range_widths must be provided");
  }
  if (options.grid_points < 2) {
    return Status::InvalidArgument("grid_points must be >= 2");
  }

  const double n = static_cast<double>(private_n);
  const double n_np = static_cast<double>(aged.num_rows());
  // Feasibility: the aged slice must fit at least one block of size
  // n^(1-alpha), i.e. alpha >= 1 - log(n_np)/log(n). Cap alpha below 1 so
  // blocks keep at least one record.
  double alpha_lo = std::max(0.0, 1.0 - std::log(n_np) / std::log(n));
  double alpha_hi = 1.0;

  double best_alpha = alpha_lo;
  double best_error = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < options.grid_points; ++i) {
    double alpha = alpha_lo + (alpha_hi - alpha_lo) * static_cast<double>(i) /
                                  static_cast<double>(options.grid_points - 1);
    Result<double> err =
        EvaluateAlpha(alpha, aged, private_n, factory, options.range_widths,
                      options.epsilon_per_dim, rng);
    if (!err.ok()) continue;  // candidate infeasible; skip
    if (err.value() < best_error) {
      best_error = err.value();
      best_alpha = alpha;
    }
  }
  if (!std::isfinite(best_error)) {
    return Status::NumericalError("no feasible block size candidate");
  }

  // Hill-climb around the best grid point with a shrinking step.
  double step = (alpha_hi - alpha_lo) /
                static_cast<double>(options.grid_points - 1);
  for (std::size_t i = 0; i < options.refine_steps; ++i) {
    step *= 0.5;
    for (double candidate : {best_alpha - step, best_alpha + step}) {
      if (candidate < alpha_lo || candidate > alpha_hi) continue;
      Result<double> err =
          EvaluateAlpha(candidate, aged, private_n, factory,
                        options.range_widths, options.epsilon_per_dim, rng);
      if (err.ok() && err.value() < best_error) {
        best_error = err.value();
        best_alpha = candidate;
      }
    }
  }

  BlockPlanChoice choice;
  choice.alpha = best_alpha;
  choice.predicted_error = best_error;
  auto block_size = static_cast<std::size_t>(
      std::llround(std::pow(n, 1.0 - best_alpha)));
  choice.block_size = std::clamp<std::size_t>(block_size, 1, private_n);
  choice.num_blocks =
      std::max<std::size_t>(1, private_n / choice.block_size);
  return choice;
}

}  // namespace gupt
