// The stage interface of the query pipeline.
//
// A stage is one composable unit of the query path (paper Figure 2): it
// reads and writes the QueryContext and reports success or failure. Stages
// are stateless with respect to queries — one stage object serves every
// concurrent query — so per-query state lives exclusively in the context.
//
// Trace vocabulary: stages emit spans under the *established* stage names
// (`block_plan`, `budget_charge`, `partition`, ... — see
// docs/observability.md); a stage object may emit several spans. New
// stages register their trace names simply by constructing a StageScope
// with the new name; the metric series
// `gupt_runtime_stage_duration_seconds{stage=...}` follows automatically.

#ifndef GUPT_CORE_PIPELINE_STAGE_H_
#define GUPT_CORE_PIPELINE_STAGE_H_

#include <chrono>
#include <string>

#include "common/status.h"
#include "core/pipeline/query_context.h"
#include "obs/metrics.h"
#include "obs/prof/profiler.h"
#include "obs/prof/rusage.h"
#include "obs/trace.h"

namespace gupt {

/// One named unit of the query pipeline.
class Stage {
 public:
  virtual ~Stage() = default;

  /// Stable identifier of the stage object (for diagnostics; distinct from
  /// the trace span vocabulary, which predates the stage objects).
  virtual const char* name() const = 0;

  /// Advances the query. On error the pipeline stops and the driver
  /// propagates the status; budget already charged stays charged
  /// (fail-closed, see CONTRIBUTING.md invariant 1).
  virtual Status Run(QueryContext& ctx) const = 0;
};

/// Times one traced pipeline step into both the query's trace (when
/// present) and the global per-stage histogram
/// `gupt_runtime_stage_duration_seconds{stage=<name>}`. Also measures the
/// coordinator thread's CPU over the step (recorded on the span as
/// `cpu_ns` and in `gupt_prof_stage_cpu_seconds{stage=<name>}`) and tags
/// the thread for the sampling profiler, so /profilez samples taken
/// inside the step attribute to `stage:<name>`.
class StageScope {
 public:
  StageScope(obs::QueryTrace* trace, const char* stage);

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  void set_ok(bool ok) { ok_ = ok; }
  void set_note(std::string note) { note_ = std::move(note); }

  ~StageScope();

 private:
  obs::QueryTrace* trace_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
  std::int64_t cpu_start_;
  obs::prof::ScopedStageTag stage_tag_;
  bool ok_ = true;
  std::string note_;
};

}  // namespace gupt

#endif  // GUPT_CORE_PIPELINE_STAGE_H_
