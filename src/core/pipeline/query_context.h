// Query vocabulary and the context threaded through the staged pipeline.
//
// A query's life is an ordered walk over stage objects (see
// docs/architecture.md): Plan -> Admit -> Partition -> ExecuteBlocks ->
// Aggregate -> Release. The QueryContext is the single mutable record the
// stages hand to one another: the analyst's spec, the resolved plan, the
// query's forked RNG, its trace, the dataset handle, and every
// intermediate product (partition, block outputs, clamped averages). A
// context belongs to exactly one query on exactly one coordinating thread;
// stages never share it across queries.

#ifndef GUPT_CORE_PIPELINE_QUERY_CONTEXT_H_
#define GUPT_CORE_PIPELINE_QUERY_CONTEXT_H_

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/budget_estimator.h"
#include "core/output_range.h"
#include "core/sample_aggregate.h"
#include "data/dataset_manager.h"
#include "data/partitioner.h"
#include "dp/amplification.h"
#include "exec/computation_manager.h"
#include "exec/program.h"
#include "obs/prof/rusage.h"
#include "obs/trace.h"

namespace gupt {

/// How the declared epsilon maps onto per-dimension mechanism budgets.
enum class BudgetAccounting {
  /// Theorem 1 (default): the declared epsilon is the query's total; it is
  /// split across the p output dimensions (and halved for range
  /// estimation in loose/helper modes).
  kTheorem1,
  /// The paper's evaluation configuration: the declared epsilon applies to
  /// each released output dimension (the formal guarantee is then p * eps
  /// for a p-dimensional output). The accountant is still charged only the
  /// declared epsilon, matching how the paper reports its x-axes.
  kPerDimension,
};

/// One analyst query.
struct QuerySpec {
  /// Fresh-instance factory for the untrusted program.
  ProgramFactory program;
  /// Opaque token resolvable by pre-warmed chamber-pool workers (see
  /// exec/chamber_pool.h). Empty = this program cannot be shipped to the
  /// pool and runs on the in-process or fork-per-block chamber instead.
  std::string pool_program;
  /// Output-range declaration (tight / loose / helper).
  OutputRangeSpec range;

  /// Explicit privacy budget for the whole query. Exactly one of `epsilon`
  /// and `accuracy_goal` must be set.
  std::optional<double> epsilon;
  /// Accuracy goal to be converted into a budget (§5.1); requires the
  /// dataset to have an aged slice and the program to output one dimension.
  std::optional<AccuracyGoal> accuracy_goal;

  /// Explicit block size beta. When absent the runtime uses the aged-data
  /// planner if `optimize_block_size` is set and an aged slice exists, and
  /// otherwise the paper's default of n^0.6 (l = n^0.4 blocks).
  std::optional<std::size_t> block_size;
  bool optimize_block_size = false;
  /// Resampling factor gamma (§4.2); 1 disables resampling.
  std::size_t gamma = 1;
  /// Epsilon interpretation for multi-dimensional outputs.
  BudgetAccounting accounting = BudgetAccounting::kTheorem1;
  /// Amplification-by-sampling mode (dp/amplification.h). Any non-off
  /// mode CHANGES THE MECHANISM: the pipeline draws a
  /// Bernoulli(amplification_rate) subsample of the dataset, partitions
  /// only the subsample, and aggregates only over it — that is what makes
  /// the amplified ledger charge sound (averaging all blocks of a full
  /// partition is parallel composition, not amplification). kOff
  /// reproduces the historical pipeline bit-for-bit. Non-off modes
  /// require `amplification_rate`, gamma == 1 and tight/loose range
  /// declarations (helper mode reads records outside the subsample);
  /// kChargedEpsilon additionally requires an explicit `epsilon`.
  dp::AmplificationMode amplification = dp::AmplificationMode::kOff;
  /// Bernoulli inclusion probability of the amplification subsample, in
  /// (0, 1]. Required when `amplification` is not kOff; 1.0 disables the
  /// subsample draw (and charges exactly the declared epsilon). This is
  /// an explicit privacy parameter — the runtime never infers it from the
  /// block geometry.
  std::optional<double> amplification_rate;
  /// Ceiling on the raw epsilon kChargedEpsilon may derive from the
  /// declared charge (the inverse map is unbounded as the sampling rate
  /// shrinks). Conversions above it are rejected before admission.
  double amplification_raw_epsilon_cap = dp::kDefaultRawEpsilonCap;
  /// User-level privacy (paper §8.1): when one user may own up to this
  /// many records, all sensitivities are scaled by it (group privacy), so
  /// the release is epsilon-DP at the *user* level. 1 = record-level DP.
  std::size_t records_per_user = 1;
};

/// What the analyst gets back, plus runtime diagnostics.
struct QueryReport {
  /// The differentially private output.
  Row output;
  /// Total budget charged to the dataset.
  double epsilon_spent = 0.0;
  /// SAF aggregation budget per output dimension.
  double epsilon_saf_per_dim = 0.0;
  std::size_t block_size = 0;
  std::size_t num_blocks = 0;
  std::size_t gamma = 1;
  /// Amplification-by-sampling diagnostics: the charging mode, the
  /// Bernoulli rate of the pre-partition subsample, and the raw epsilon
  /// the subsampled mechanism's noise was calibrated at. Under kOff,
  /// epsilon_raw == epsilon_spent and sampling_rate stays 1.0 (no
  /// subsample is drawn).
  dp::AmplificationMode amplification = dp::AmplificationMode::kOff;
  double sampling_rate = 1.0;
  double epsilon_raw = 0.0;
  /// The clamp ranges actually used for aggregation.
  std::vector<Range> effective_ranges;
  /// Chamber diagnostics (visible to the trusted operator only).
  std::size_t fallback_blocks = 0;
  std::size_t deadline_exceeded_blocks = 0;
  std::size_t policy_violations = 0;
  std::chrono::nanoseconds elapsed{0};
  /// Per-stage timings and DP gauges for this query (operator-visible
  /// diagnostics; see docs/observability.md for the stage vocabulary).
  obs::QueryTrace trace;
  /// Resource ledger for this query: coordinator-thread CPU and rusage
  /// deltas over the stage walk, plus summed process-chamber child
  /// rusage. Filled by the pipeline driver (see docs/observability.md).
  obs::prof::ResourceLedger resources;
};

/// Everything decided about a query before any budget is charged.
struct QueryPlan {
  std::size_t output_dims = 0;
  std::size_t block_size = 0;
  std::size_t num_blocks = 0;
  std::size_t gamma = 1;
  double epsilon_saf_per_dim = 0.0;
  double epsilon_total = 0.0;
  /// Amplification-by-sampling calibration (PlanStage): the charging mode
  /// copied from the spec, the Bernoulli rate of the subsample
  /// PartitionStage must draw (1.0 = no draw), and the amplified ledger
  /// charge. Under kOff, epsilon_charged == epsilon_total, so
  /// AdmitStage's debit is unchanged bit-for-bit. Under any non-off mode
  /// `num_blocks` is FIXED at plan time from the expected subsample size;
  /// PartitionStage refuses (rather than repartitions) in the
  /// astronomically unlikely event the realised subsample is smaller than
  /// the planned block count, so the noise scale never depends on the
  /// realised sample size.
  dp::AmplificationMode amplification = dp::AmplificationMode::kOff;
  double sampling_rate = 1.0;
  double epsilon_charged = 0.0;
  /// Ranges known before execution (declared, or helper-translated from
  /// *loose* inputs for width estimation); loose mode refines after.
  std::vector<Range> planning_ranges;
};

/// The mutable record one query carries through the stage sequence.
///
/// Ownership rules (also in docs/architecture.md):
///   * The context does NOT own the dataset, spec, RNG, or trace — the
///     driver (GuptRuntime) keeps them alive for the whole walk.
///   * Everything else (plan, partition, block outputs, report) is owned
///     by the context and written by exactly one stage each.
///   * `trace` may be null (e.g. provisional shared-budget planning);
///     stage histograms are still recorded in the process-global registry.
struct QueryContext {
  QueryContext(RegisteredDataset& dataset, const QuerySpec& query_spec,
               Rng* query_rng, obs::QueryTrace* query_trace)
      : ds(&dataset), spec(&query_spec), rng(query_rng), trace(query_trace) {}

  RegisteredDataset* ds;    // not owned
  const QuerySpec* spec;    // not owned
  Rng* rng;                 // not owned
  obs::QueryTrace* trace;   // not owned; may be null

  /// Filled by PlanStage — or by the driver (with `plan_resolved` set)
  /// when the plan was decided elsewhere, e.g. by the shared-budget
  /// allocator (§5.2). PlanStage is a no-op for a resolved plan.
  QueryPlan plan;
  bool plan_resolved = false;

  // --- written by AdmitStage ---------------------------------------------
  /// Audit label, e.g. "mean [tight]".
  std::string label;
  /// Clamp ranges for aggregation; starts as the planning ranges, refined
  /// by helper (AdmitStage) or loose (AggregateStage) estimation.
  std::vector<Range> effective_ranges;
  /// Data-independent substitute for killed/failed blocks (§6.2).
  Row fallback;
  /// Start of the post-plan phase; ReleaseStage stamps report.elapsed.
  std::chrono::steady_clock::time_point admitted_at;

  // --- written by PartitionStage -----------------------------------------
  /// Block-shuffled materialization: one gather, zero-copy block views.
  BlockSet blocks;

  /// Per-query scratch (partition permutations and gather indices); reset
  /// between pipeline walks of the same context, never shared across
  /// coordinator threads.
  Arena arena;

  // --- written by ExecuteBlocksStage -------------------------------------
  BlockExecutionReport exec_report;
  std::vector<Row> block_outputs;

  // --- written by AggregateStage -----------------------------------------
  Row averages;
  AggregateResult aggregate;

  /// Assembled incrementally; finalised by ReleaseStage.
  QueryReport report;
};

}  // namespace gupt

#endif  // GUPT_CORE_PIPELINE_QUERY_CONTEXT_H_
