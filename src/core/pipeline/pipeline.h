// QueryPipeline: the staged query path shared by every execution mode.
//
// One pipeline object serves all concurrent queries of a runtime; per-query
// state travels in the QueryContext. `GuptRuntime::Execute` runs the full
// walk; `ExecuteWithSharedBudget` first calls Plan() per query (provisional
// unit budget), lets the allocator fix each query's epsilon, then re-enters
// the same walk with `plan_resolved` set so PlanStage passes through.

#ifndef GUPT_CORE_PIPELINE_PIPELINE_H_
#define GUPT_CORE_PIPELINE_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/pipeline/query_context.h"
#include "core/pipeline/stage.h"
#include "core/pipeline/stages.h"

namespace gupt {

class ComputationManager;

class QueryPipeline {
 public:
  /// `manager` executes the block fan-out; not owned, must outlive the
  /// pipeline.
  explicit QueryPipeline(const ComputationManager* manager);

  QueryPipeline(const QueryPipeline&) = delete;
  QueryPipeline& operator=(const QueryPipeline&) = delete;

  /// Runs PlanStage alone and returns the resolved plan. Used for the
  /// provisional planning pass of shared-budget batches (§5.2).
  Result<QueryPlan> Plan(QueryContext& ctx) const;

  /// Runs the full stage sequence. Wraps the walk in the query-level
  /// metrics (`gupt_runtime_queries_total`,
  /// `gupt_runtime_query_duration_seconds`) and, on success, moves the
  /// context's trace into the report.
  Result<QueryReport> Run(QueryContext& ctx) const;

  /// The stage sequence, in execution order (diagnostics / tests).
  std::vector<const Stage*> stages() const;

 private:
  const ComputationManager* manager_;  // not owned
  PipelineMetrics metrics_;
  PlanStage plan_stage_;
  AdmitStage admit_stage_;
  PartitionStage partition_stage_;
  ExecuteBlocksStage execute_stage_;
  AggregateStage aggregate_stage_;
  ReleaseStage release_stage_;
  /// The walk order; every entry points at one of the members above.
  std::vector<const Stage*> sequence_;
};

}  // namespace gupt

#endif  // GUPT_CORE_PIPELINE_PIPELINE_H_
