// The concrete stages of the GUPT query pipeline, in execution order:
//
//   PlanStage           validate the spec, choose beta, derive the budget
//                       (spans: block_plan, budget_derive)
//   AdmitStage          atomically charge the accountant, then (helper
//                       mode) estimate ranges from private inputs
//                       (spans: budget_charge, range_estimate)
//   PartitionStage      sample the block plan (span: partition)
//   ExecuteBlocksStage  chamber fan-out via the ComputationManager
//                       (span: execute_blocks)
//   AggregateStage      (loose mode) estimate ranges from block outputs,
//                       clamp + average, add Laplace noise
//                       (spans: range_estimate, clamp_average, noise)
//   ReleaseStage        publish DP gauges and finalise the QueryReport
//
// Every span name and metric name predates the stage objects and is
// frozen vocabulary (docs/observability.md).

#ifndef GUPT_CORE_PIPELINE_STAGES_H_
#define GUPT_CORE_PIPELINE_STAGES_H_

#include <cstddef>

#include "core/pipeline/query_context.h"
#include "core/pipeline/stage.h"
#include "obs/metrics.h"

namespace gupt {

class ComputationManager;

/// Theorem 1 budget multiplier: the total equals multiplier * p * eps_saf.
double ModeMultiplier(RangeMode mode);

/// The p the declared epsilon is split across: 1 under per-dimension
/// accounting, the output dimension under Theorem 1.
double EffectiveOutputDims(const QuerySpec& spec, std::size_t output_dims);

/// Observability handles shared by the stages (process-global registry;
/// names are frozen — see docs/observability.md).
struct PipelineMetrics {
  obs::Counter* queries_ok;
  obs::Counter* queries_error;
  obs::Histogram* query_duration;
  obs::Counter* epsilon_charged;
  obs::Gauge* noise_scale;
  obs::Gauge* block_count;
  obs::Gauge* block_size;
  obs::Gauge* gamma;
  obs::Histogram* query_cpu;
  obs::Counter* minor_faults;
  obs::Counter* major_faults;
  obs::Counter* ctx_switches_voluntary;
  obs::Counter* ctx_switches_involuntary;
  obs::Gauge* process_max_rss;
  obs::Counter* amplification_queries;
  obs::Gauge* amplification_sampling_rate;
  obs::Counter* amplification_epsilon_saved;

  /// Registers (or re-resolves) every handle.
  static PipelineMetrics Register();
};

/// Validates the spec and fills ctx.plan: output dims, planning ranges,
/// block geometry (explicit > aged planner > n^0.6 default), and the
/// budget (explicit epsilon or solved from the accuracy goal, §5.1).
/// A context with `plan_resolved` set (shared-budget batches) passes
/// through untouched.
class PlanStage : public Stage {
 public:
  const char* name() const override { return "PlanStage"; }
  Status Run(QueryContext& ctx) const override;
};

/// The single admission point: charges the full budget up front — a
/// program that later misbehaves (or an analyst who aborts mid-query)
/// cannot reclaim or overdraw it — then seeds the report and, in helper
/// mode, spends the range half of the budget on private input quartiles.
class AdmitStage : public Stage {
 public:
  explicit AdmitStage(const PipelineMetrics* metrics) : metrics_(metrics) {}
  const char* name() const override { return "AdmitStage"; }
  Status Run(QueryContext& ctx) const override;

 private:
  const PipelineMetrics* metrics_;  // not owned
};

/// Samples the block plan: disjoint blocks, or gamma-fold resampled
/// blocks (§4.2) when the spec asks for resampling.
class PartitionStage : public Stage {
 public:
  const char* name() const override { return "PartitionStage"; }
  Status Run(QueryContext& ctx) const override;
};

/// Fans the untrusted program out across the blocks in isolated chambers
/// and folds the per-block outcomes into the context.
class ExecuteBlocksStage : public Stage {
 public:
  explicit ExecuteBlocksStage(const ComputationManager* manager)
      : manager_(manager) {}
  const char* name() const override { return "ExecuteBlocksStage"; }
  Status Run(QueryContext& ctx) const override;

 private:
  const ComputationManager* manager_;  // not owned
};

/// Algorithm 1's aggregation: (loose mode) refine the clamp ranges from
/// the block outputs, clamp + average, and add calibrated Laplace noise.
class AggregateStage : public Stage {
 public:
  const char* name() const override { return "AggregateStage"; }
  Status Run(QueryContext& ctx) const override;
};

/// Publishes the DP gauges (global metrics + per-query trace) and
/// finalises the QueryReport.
class ReleaseStage : public Stage {
 public:
  explicit ReleaseStage(const PipelineMetrics* metrics) : metrics_(metrics) {}
  const char* name() const override { return "ReleaseStage"; }
  Status Run(QueryContext& ctx) const override;

 private:
  const PipelineMetrics* metrics_;  // not owned
};

}  // namespace gupt

#endif  // GUPT_CORE_PIPELINE_STAGES_H_
