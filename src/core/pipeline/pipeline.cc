#include "core/pipeline/pipeline.h"

#include <chrono>
#include <utility>

#include "obs/prof/rusage.h"

namespace gupt {

QueryPipeline::QueryPipeline(const ComputationManager* manager)
    : manager_(manager),
      metrics_(PipelineMetrics::Register()),
      admit_stage_(&metrics_),
      execute_stage_(manager_),
      release_stage_(&metrics_),
      sequence_{&plan_stage_,      &admit_stage_,     &partition_stage_,
                &execute_stage_,   &aggregate_stage_, &release_stage_} {}

Result<QueryPlan> QueryPipeline::Plan(QueryContext& ctx) const {
  GUPT_RETURN_IF_ERROR(plan_stage_.Run(ctx));
  return ctx.plan;
}

Result<QueryReport> QueryPipeline::Run(QueryContext& ctx) const {
  // Resource ledger: coordinator-thread CPU and rusage deltas bracket the
  // whole walk (planning included, so the per-stage cpu_ns spans sum to at
  // most this total); child rusage is folded in from the execute stage's
  // report after the walk.
  const std::int64_t cpu_begin = obs::prof::ThreadCpuNanos();
  const obs::prof::RusageSnapshot ru_begin = obs::prof::ThreadRusage();

  // Planning failures are refusals, not executions: they count as query
  // errors but do not enter the execution-duration histogram.
  Status planned = plan_stage_.Run(ctx);
  if (!planned.ok()) {
    metrics_.queries_error->Increment();
    return planned;
  }
  const auto start = std::chrono::steady_clock::now();
  Status outcome = Status::OK();
  for (std::size_t i = 1; i < sequence_.size(); ++i) {
    outcome = sequence_[i]->Run(ctx);
    if (!outcome.ok()) break;
  }
  metrics_.query_duration->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());

  obs::prof::ResourceLedger& res = ctx.report.resources;
  res.cpu_ns = obs::prof::ThreadCpuNanos() - cpu_begin;
  const obs::prof::RusageSnapshot ru_delta =
      obs::prof::Delta(ru_begin, obs::prof::ThreadRusage());
  res.minor_faults = ru_delta.minor_faults;
  res.major_faults = ru_delta.major_faults;
  res.voluntary_ctx_switches = ru_delta.voluntary_ctx_switches;
  res.involuntary_ctx_switches = ru_delta.involuntary_ctx_switches;
  res.max_rss_kb = obs::prof::ProcessRusage().max_rss_kb;
  res.child_user_cpu_ns = ctx.exec_report.child_user_cpu_ns;
  res.child_sys_cpu_ns = ctx.exec_report.child_sys_cpu_ns;
  res.child_max_rss_kb = ctx.exec_report.child_max_rss_kb;

  metrics_.query_cpu->Observe(static_cast<double>(res.cpu_ns) / 1e9);
  metrics_.minor_faults->Increment(static_cast<double>(res.minor_faults));
  metrics_.major_faults->Increment(static_cast<double>(res.major_faults));
  metrics_.ctx_switches_voluntary->Increment(
      static_cast<double>(res.voluntary_ctx_switches));
  metrics_.ctx_switches_involuntary->Increment(
      static_cast<double>(res.involuntary_ctx_switches));
  metrics_.process_max_rss->Set(static_cast<double>(res.max_rss_kb) * 1024.0);

  (outcome.ok() ? metrics_.queries_ok : metrics_.queries_error)->Increment();
  if (!outcome.ok()) return outcome;
  if (ctx.trace != nullptr) {
    ctx.report.trace = std::move(*ctx.trace);
  }
  return std::move(ctx.report);
}

std::vector<const Stage*> QueryPipeline::stages() const { return sequence_; }

}  // namespace gupt
