#include "core/pipeline/pipeline.h"

#include <chrono>
#include <utility>

namespace gupt {

QueryPipeline::QueryPipeline(const ComputationManager* manager)
    : manager_(manager),
      metrics_(PipelineMetrics::Register()),
      admit_stage_(&metrics_),
      execute_stage_(manager_),
      release_stage_(&metrics_),
      sequence_{&plan_stage_,      &admit_stage_,     &partition_stage_,
                &execute_stage_,   &aggregate_stage_, &release_stage_} {}

Result<QueryPlan> QueryPipeline::Plan(QueryContext& ctx) const {
  GUPT_RETURN_IF_ERROR(plan_stage_.Run(ctx));
  return ctx.plan;
}

Result<QueryReport> QueryPipeline::Run(QueryContext& ctx) const {
  // Planning failures are refusals, not executions: they count as query
  // errors but do not enter the execution-duration histogram.
  Status planned = plan_stage_.Run(ctx);
  if (!planned.ok()) {
    metrics_.queries_error->Increment();
    return planned;
  }
  const auto start = std::chrono::steady_clock::now();
  Status outcome = Status::OK();
  for (std::size_t i = 1; i < sequence_.size(); ++i) {
    outcome = sequence_[i]->Run(ctx);
    if (!outcome.ok()) break;
  }
  metrics_.query_duration->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  (outcome.ok() ? metrics_.queries_ok : metrics_.queries_error)->Increment();
  if (!outcome.ok()) return outcome;
  if (ctx.trace != nullptr) {
    ctx.report.trace = std::move(*ctx.trace);
  }
  return std::move(ctx.report);
}

std::vector<const Stage*> QueryPipeline::stages() const { return sequence_; }

}  // namespace gupt
