#include "core/pipeline/stages.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/block_planner.h"
#include "dp/amplification.h"
#include "core/sample_aggregate.h"
#include "data/partitioner.h"
#include "exec/computation_manager.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

/// Per-stage duration histogram, labelled by stage name.
obs::Histogram* StageHistogram(const char* stage) {
  return obs::MetricsRegistry::Get().GetHistogram(
      "gupt_runtime_stage_duration_seconds",
      "Wall time of one GUPT pipeline stage (see docs/observability.md).",
      obs::Histogram::DurationBuckets(), {{"stage", stage}});
}

/// Per-stage coordinator-thread CPU histogram, labelled by stage name.
obs::Histogram* StageCpuHistogram(const char* stage) {
  return obs::MetricsRegistry::Get().GetHistogram(
      "gupt_prof_stage_cpu_seconds",
      "Coordinator-thread CPU time of one GUPT pipeline stage "
      "(CLOCK_THREAD_CPUTIME_ID delta; see docs/observability.md).",
      obs::Histogram::DurationBuckets(), {{"stage", stage}});
}

Row RangeMidpoints(const std::vector<Range>& ranges) {
  Row mid(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    mid[i] = 0.5 * (ranges[i].lo + ranges[i].hi);
  }
  return mid;
}

Status ValidateRanges(const std::vector<Range>& ranges, std::size_t arity,
                      const char* what) {
  if (ranges.size() != arity) {
    return Status::InvalidArgument(
        std::string(what) + " arity " + std::to_string(ranges.size()) +
        " does not match expected " + std::to_string(arity));
  }
  for (const Range& r : ranges) {
    if (!(r.lo <= r.hi) || !std::isfinite(r.lo) || !std::isfinite(r.hi)) {
      return Status::InvalidArgument(std::string(what) + " contains lo > hi");
    }
  }
  return Status::OK();
}

/// The loose input ranges a helper-mode query should use: the spec's, or
/// the data owner's registered ranges.
Result<std::vector<Range>> ResolveLooseInputRanges(const RegisteredDataset& ds,
                                                   const QuerySpec& spec) {
  if (!spec.range.loose_input_ranges.empty()) {
    GUPT_RETURN_IF_ERROR(ValidateRanges(spec.range.loose_input_ranges,
                                        ds.data().num_dims(),
                                        "loose input ranges"));
    return spec.range.loose_input_ranges;
  }
  if (ds.input_ranges() != nullptr) {
    return *ds.input_ranges();
  }
  return Status::InvalidArgument(
      "GUPT-helper requires loose input ranges (from the query or the data "
      "owner's registration)");
}

}  // namespace

StageScope::StageScope(obs::QueryTrace* trace, const char* stage)
    : trace_(trace),
      stage_(stage),
      start_(std::chrono::steady_clock::now()),
      cpu_start_(obs::prof::ThreadCpuNanos()),
      stage_tag_(stage) {}

StageScope::~StageScope() {
  const std::int64_t cpu_ns = obs::prof::ThreadCpuNanos() - cpu_start_;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  if (trace_ != nullptr) {
    obs::SpanRecord span;
    span.name = stage_;
    span.start_ns = obs::NanosSinceTraceEpoch(start_);
    span.duration =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed);
    span.ok = ok_;
    span.note = std::move(note_);
    span.cpu_ns = cpu_ns >= 0 ? cpu_ns : -1;
    trace_->AddSpan(std::move(span));
  }
  StageHistogram(stage_)->Observe(
      std::chrono::duration<double>(elapsed).count());
  StageCpuHistogram(stage_)->Observe(
      cpu_ns >= 0 ? static_cast<double>(cpu_ns) / 1e9 : 0.0);
}

double ModeMultiplier(RangeMode mode) {
  return mode == RangeMode::kTight ? 1.0 : 2.0;
}

double EffectiveOutputDims(const QuerySpec& spec, std::size_t output_dims) {
  return spec.accounting == BudgetAccounting::kPerDimension
             ? 1.0
             : static_cast<double>(output_dims);
}

PipelineMetrics PipelineMetrics::Register() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  PipelineMetrics metrics;
  metrics.queries_ok = registry.GetCounter(
      "gupt_runtime_queries_total", "Queries executed, by outcome.",
      {{"outcome", "ok"}});
  metrics.queries_error = registry.GetCounter(
      "gupt_runtime_queries_total", "Queries executed, by outcome.",
      {{"outcome", "error"}});
  metrics.query_duration = registry.GetHistogram(
      "gupt_runtime_query_duration_seconds",
      "End-to-end wall time of one query (planning through release).",
      obs::Histogram::DurationBuckets());
  metrics.epsilon_charged = registry.GetCounter(
      "gupt_dp_epsilon_charged_total",
      "Total privacy budget charged across all datasets and queries.");
  metrics.noise_scale = registry.GetGauge(
      "gupt_dp_noise_scale",
      "Largest per-dimension Laplace scale used by the last release.");
  metrics.block_count = registry.GetGauge(
      "gupt_dp_block_count", "Number of blocks (l) in the last query.");
  metrics.block_size = registry.GetGauge(
      "gupt_dp_block_size_count",
      "Records per block (beta) in the last query.");
  metrics.gamma = registry.GetGauge(
      "gupt_dp_gamma_ratio",
      "Resampling multiplicity (gamma) of the last query.");
  metrics.query_cpu = registry.GetHistogram(
      "gupt_prof_query_cpu_seconds",
      "Coordinator-thread CPU time of one query (plan through release).",
      obs::Histogram::DurationBuckets());
  metrics.minor_faults = registry.GetCounter(
      "gupt_rusage_minor_faults_total",
      "Coordinator-thread minor page faults during query execution.");
  metrics.major_faults = registry.GetCounter(
      "gupt_rusage_major_faults_total",
      "Coordinator-thread major page faults during query execution.");
  metrics.ctx_switches_voluntary = registry.GetCounter(
      "gupt_rusage_ctx_switches_total",
      "Coordinator-thread context switches during query execution, by kind.",
      {{"kind", "voluntary"}});
  metrics.ctx_switches_involuntary = registry.GetCounter(
      "gupt_rusage_ctx_switches_total",
      "Coordinator-thread context switches during query execution, by kind.",
      {{"kind", "involuntary"}});
  metrics.process_max_rss = registry.GetGauge(
      "gupt_rusage_process_max_rss_bytes",
      "Process high-water RSS at the last query release.");
  metrics.amplification_queries = registry.GetCounter(
      "gupt_amplification_queries_total",
      "Queries admitted with amplification-by-sampling charging enabled.");
  metrics.amplification_sampling_rate = registry.GetGauge(
      "gupt_amplification_sampling_rate_ratio",
      "Bernoulli rate of the last amplified query's pre-partition "
      "subsample.");
  metrics.amplification_epsilon_saved = registry.GetCounter(
      "gupt_amplification_epsilon_saved_total",
      "Budget saved by amplification: sum of raw epsilon minus amplified "
      "charge over all amplified queries.");
  return metrics;
}

Status PlanStage::Run(QueryContext& ctx) const {
  // Each stage's fault site sits at Run() entry: an injected error there
  // models the stage failing before any of its effects, which pins down
  // the charge semantics (pre-admit fails charge nothing; post-admit fails
  // keep the up-front charge — tests/core/pipeline_fault_test.cc).
  GUPT_FAILPOINT_STATUS("core.pipeline.plan");
  if (ctx.plan_resolved) return Status::OK();  // decided by the driver
  const QuerySpec& spec = *ctx.spec;
  const RegisteredDataset& ds = *ctx.ds;
  if (!spec.program) {
    return Status::InvalidArgument("query has no program");
  }
  if (spec.epsilon.has_value() == spec.accuracy_goal.has_value()) {
    return Status::InvalidArgument(
        "exactly one of epsilon and accuracy_goal must be set");
  }
  if (spec.gamma == 0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  if (spec.records_per_user == 0) {
    return Status::InvalidArgument("records_per_user must be >= 1");
  }

  QueryPlan& plan = ctx.plan;
  plan.gamma = spec.gamma;
  {
    std::unique_ptr<AnalysisProgram> probe = spec.program();
    if (!probe) {
      return Status::InvalidArgument("program factory returned null");
    }
    plan.output_dims = probe->output_dims();
  }
  if (plan.output_dims == 0) {
    return Status::InvalidArgument("program declares zero output dimensions");
  }
  const std::size_t n = ds.data().num_rows();
  const double p = EffectiveOutputDims(spec, plan.output_dims);
  const double multiplier = ModeMultiplier(spec.range.mode);

  // Amplification by sampling (dp/amplification.h). The amplified charge
  // is sound only when the release depends on a single random
  // gamma-subsample — averaging all blocks of a full partition is
  // parallel composition, already priced into the raw epsilon. So any
  // non-off mode commits PartitionStage to drawing a Bernoulli(rate)
  // subsample and the whole plan (block geometry included) is laid out
  // against the subsample's expected size. The block count is fixed HERE,
  // from public quantities only, so the noise scale never depends on the
  // realised sample size.
  plan.amplification = spec.amplification;
  plan.sampling_rate = 1.0;
  // Rows the mechanism will see: n, or the expected subsample size.
  std::size_t n_mech = n;
  // kChargedEpsilon: the raw epsilon derived from the declared charge,
  // known before block planning because the rate is spec-supplied.
  std::optional<double> charged_raw_epsilon;
  if (plan.amplification != dp::AmplificationMode::kOff) {
    // Pre-admission fault site: an injected failure here aborts the query
    // before AdmitStage, so nothing may be charged.
    GUPT_FAILPOINT_STATUS("core.amplify.calibrate");
    if (!spec.amplification_rate.has_value()) {
      return Status::InvalidArgument(
          "amplification requires an explicit sampling rate in (0, 1] "
          "(QuerySpec::amplification_rate)");
    }
    const double rate = *spec.amplification_rate;
    if (!std::isfinite(rate) || rate <= 0.0 || rate > 1.0) {
      return Status::InvalidArgument(
          "amplification_rate must be in (0, 1]");
    }
    if (spec.gamma != 1) {
      return Status::InvalidArgument(
          "amplification requires gamma == 1: a resampled partition's "
          "block count depends on the realised subsample size, which "
          "breaks the fixed-geometry sensitivity argument");
    }
    if (spec.range.mode == RangeMode::kHelper) {
      return Status::InvalidArgument(
          "amplification does not support helper mode: input-range "
          "estimation reads records outside the subsample, so the release "
          "would no longer depend on the subsample alone");
    }
    plan.sampling_rate = rate;
    if (rate < 1.0) {
      n_mech = static_cast<std::size_t>(std::llround(rate * static_cast<double>(n)));
      n_mech = std::max<std::size_t>(1, std::min(n_mech, n));
    }
    if (plan.amplification == dp::AmplificationMode::kChargedEpsilon) {
      if (!spec.epsilon.has_value()) {
        return Status::InvalidArgument(
            "charged_epsilon amplification requires an explicit epsilon: "
            "an accuracy goal solves the raw epsilon, so the analyst does "
            "not own the charge (use raw_epsilon)");
      }
      GUPT_ASSIGN_OR_RETURN(
          double raw, dp::RawEpsilonForAmplified(*spec.epsilon, rate));
      if (raw > spec.amplification_raw_epsilon_cap) {
        return Status::InvalidArgument(
            "charged_epsilon at rate " + std::to_string(rate) +
            " derives raw epsilon " + std::to_string(raw) +
            " above the cap " +
            std::to_string(spec.amplification_raw_epsilon_cap) +
            " (QuerySpec::amplification_raw_epsilon_cap)");
      }
      charged_raw_epsilon = raw;
    }
  }

  // Planning-time output ranges: declared for tight/loose; for helper,
  // translated from the *loose* (public) input ranges — no privacy cost,
  // and only used for widths and fallback values, never to clamp real
  // outputs.
  switch (spec.range.mode) {
    case RangeMode::kTight:
    case RangeMode::kLoose:
      GUPT_RETURN_IF_ERROR(ValidateRanges(spec.range.declared_ranges,
                                          plan.output_dims,
                                          "declared output ranges"));
      plan.planning_ranges = spec.range.declared_ranges;
      break;
    case RangeMode::kHelper: {
      if (!spec.range.translator) {
        return Status::InvalidArgument("GUPT-helper requires a translator");
      }
      GUPT_ASSIGN_OR_RETURN(std::vector<Range> loose_input,
                            ResolveLooseInputRanges(ds, spec));
      GUPT_ASSIGN_OR_RETURN(plan.planning_ranges,
                            spec.range.translator(loose_input));
      GUPT_RETURN_IF_ERROR(ValidateRanges(plan.planning_ranges,
                                          plan.output_dims,
                                          "translated output ranges"));
      break;
    }
  }

  std::vector<double> widths(plan.output_dims);
  for (std::size_t d = 0; d < plan.output_dims; ++d) {
    widths[d] = plan.planning_ranges[d].width();
  }

  // Block size: explicit > aged-data planner > paper default n^0.6 — all
  // laid out against n_mech, the rows the mechanism will actually see
  // (the expected subsample size under amplification, n otherwise).
  {
    StageScope stage(ctx.trace, "block_plan");
    if (spec.block_size.has_value()) {
      if (*spec.block_size == 0 || *spec.block_size > n_mech) {
        stage.set_ok(false);
        return Status::InvalidArgument(
            n_mech == n ? "block_size must be in [1, n]"
                        : "block_size must be in [1, rate * n] under "
                          "amplification (blocks partition the subsample)");
      }
      plan.block_size = *spec.block_size;
      stage.set_note("explicit");
    } else if (spec.optimize_block_size && ds.aged() != nullptr) {
      BlockPlannerOptions planner_options;
      // When the budget is known, plan against the SAF share of the raw
      // (noise-calibration) epsilon — under charged_epsilon that is the
      // inverse-mapped value computed above, not the declared charge.
      // With an accuracy goal the budget is solved *after* the block
      // size, so plan with a provisional unit budget (the paper sequences
      // it the same way).
      planner_options.epsilon_per_dim =
          charged_raw_epsilon ? *charged_raw_epsilon / (multiplier * p)
          : spec.epsilon      ? *spec.epsilon / (multiplier * p)
                              : 1.0;
      planner_options.range_widths = widths;
      Result<BlockPlanChoice> choice = PlanBlockSize(
          *ds.aged(), n_mech, spec.program, planner_options, ctx.rng);
      if (!choice.ok()) {
        stage.set_ok(false);
        return choice.status();
      }
      plan.block_size = choice->block_size;
      stage.set_note("aged_planner");
      GUPT_LOG(kInfo) << "block planner chose beta=" << choice->block_size
                      << " (alpha=" << choice->alpha << ", predicted error "
                      << choice->predicted_error << ")";
    } else {
      std::size_t num_blocks = DefaultNumBlocks(n_mech);
      plan.block_size = std::max<std::size_t>(1, n_mech / num_blocks);
      stage.set_note("default_n06");
    }
    plan.block_size = std::min(plan.block_size, n_mech);
  }

  const std::size_t blocks_per_group =
      (n_mech + plan.block_size - 1) / plan.block_size;
  plan.num_blocks = plan.gamma * blocks_per_group;

  // Privacy budget: explicit, or solved from the accuracy goal (§5.1).
  {
    StageScope stage(ctx.trace, "budget_derive");
    if (charged_raw_epsilon.has_value()) {
      // kChargedEpsilon: the declared epsilon is the target charge; the
      // subsampled mechanism runs at the (capped) inverse raw epsilon.
      plan.epsilon_total = *charged_raw_epsilon;
      plan.epsilon_saf_per_dim = plan.epsilon_total / (multiplier * p);
      stage.set_note("charged_epsilon");
    } else if (spec.epsilon.has_value()) {
      if (!(*spec.epsilon > 0.0)) {
        stage.set_ok(false);
        return Status::InvalidArgument("epsilon must be positive");
      }
      plan.epsilon_total = *spec.epsilon;
      plan.epsilon_saf_per_dim = plan.epsilon_total / (multiplier * p);
      stage.set_note("explicit");
    } else {
      if (ds.aged() == nullptr) {
        stage.set_ok(false);
        return Status::InvalidArgument(
            "accuracy goals require an aged slice (aging-of-sensitivity "
            "model)");
      }
      if (plan.output_dims != 1) {
        stage.set_ok(false);
        return Status::InvalidArgument(
            "accuracy goals are supported for scalar-output programs");
      }
      BudgetEstimatorOptions est;
      est.goal = *spec.accuracy_goal;
      est.block_size = plan.block_size;
      est.range_width = widths[0];
      Result<BudgetEstimate> estimate = EstimateBudgetForAccuracy(
          *ds.aged(), n_mech, spec.program, est, ctx.rng);
      if (!estimate.ok()) {
        stage.set_ok(false);
        return estimate.status();
      }
      plan.epsilon_saf_per_dim = estimate->epsilon;
      plan.epsilon_total = multiplier * p * plan.epsilon_saf_per_dim;
      stage.set_note("accuracy_goal");
    }
  }

  // The ledger charge: epsilon_total under kOff; the declared target
  // under kChargedEpsilon; the amplified epsilon' of the raw calibration
  // under kRawEpsilon (explicit or accuracy-solved epsilon alike — both
  // are raw noise calibrations of the subsampled mechanism).
  plan.epsilon_charged = plan.epsilon_total;
  if (plan.amplification != dp::AmplificationMode::kOff) {
    if (charged_raw_epsilon.has_value()) {
      plan.epsilon_charged = *spec.epsilon;
    } else {
      GUPT_ASSIGN_OR_RETURN(
          plan.epsilon_charged,
          dp::AmplifiedEpsilon(plan.epsilon_total, plan.sampling_rate));
    }
  }
  return Status::OK();
}

Status AdmitStage::Run(QueryContext& ctx) const {
  GUPT_FAILPOINT_STATUS("core.pipeline.admit");
  const QuerySpec& spec = *ctx.spec;
  const QueryPlan& plan = ctx.plan;
  ctx.admitted_at = std::chrono::steady_clock::now();

  // Charge the full budget up front: a program that later misbehaves (or a
  // malicious analyst who aborts mid-query) cannot reclaim or overdraw it.
  {
    std::unique_ptr<AnalysisProgram> probe = spec.program();
    ctx.label = probe->name() + " [" + RangeModeToString(spec.range.mode) + "]";
  }
  // Under amplification the ledger is debited the amplified epsilon'
  // (plan.epsilon_charged) while the noise downstream stays calibrated at
  // the raw plan.epsilon_total. kOff charges epsilon_total directly — the
  // historical code path, which also covers hand-resolved plans whose
  // epsilon_total was edited after planning.
  const bool amplified = plan.amplification != dp::AmplificationMode::kOff;
  const double charge = amplified ? plan.epsilon_charged : plan.epsilon_total;
  if (amplified) {
    // Fault site immediately before the debit: fire => ledger untouched.
    GUPT_FAILPOINT_STATUS("core.amplify.charge");
  }
  {
    StageScope stage(ctx.trace, "budget_charge");
    Status charged = ctx.ds->accountant().Charge(charge, ctx.label);
    if (!charged.ok()) {
      stage.set_ok(false);
      return charged;
    }
  }
  metrics_->epsilon_charged->Increment(charge);
  if (amplified) {
    metrics_->amplification_queries->Increment(1.0);
    metrics_->amplification_sampling_rate->Set(plan.sampling_rate);
    metrics_->amplification_epsilon_saved->Increment(plan.epsilon_total -
                                                     charge);
  }

  ctx.report.epsilon_spent = charge;
  ctx.report.epsilon_saf_per_dim = plan.epsilon_saf_per_dim;
  ctx.report.amplification = plan.amplification;
  ctx.report.sampling_rate = plan.sampling_rate;
  ctx.report.epsilon_raw = plan.epsilon_total;
  ctx.report.block_size = plan.block_size;
  ctx.report.gamma = plan.gamma;

  // Effective clamp ranges known before execution for tight mode; helper
  // estimates them from private inputs now (charged within epsilon_total);
  // loose refines from block outputs after execution.
  ctx.effective_ranges = plan.planning_ranges;
  if (spec.range.mode == RangeMode::kHelper) {
    StageScope stage(ctx.trace, "range_estimate");
    stage.set_note("helper_inputs");
    Result<std::vector<Range>> loose_input =
        ResolveLooseInputRanges(*ctx.ds, spec);
    if (!loose_input.ok()) {
      stage.set_ok(false);
      return loose_input.status();
    }
    const std::size_t k = ctx.ds->data().num_dims();
    // Theorem 1: the input percentile pass gets epsilon/2 in total, split
    // evenly over the k input dimensions.
    double epsilon_per_input_dim =
        plan.epsilon_total / (2.0 * static_cast<double>(k));
    // User-level privacy scales the percentile mechanism's rank
    // sensitivity by the per-user record count (group privacy).
    epsilon_per_input_dim /= static_cast<double>(spec.records_per_user);
    Result<std::vector<Range>> estimated = EstimateRangesViaTranslator(
        ctx.ds->data(), *loose_input, spec.range.translator,
        epsilon_per_input_dim, plan.output_dims, ctx.rng,
        spec.range.lower_percentile, spec.range.upper_percentile);
    if (!estimated.ok()) {
      stage.set_ok(false);
      return estimated.status();
    }
    ctx.effective_ranges = std::move(estimated).value();
  }

  // The constant substituted for killed/failed blocks must be data
  // independent and inside the expected output range (§6.2): use the
  // midpoint of the pre-execution planning ranges.
  ctx.fallback = RangeMidpoints(plan.planning_ranges);
  return Status::OK();
}

Status PartitionStage::Run(QueryContext& ctx) const {
  GUPT_FAILPOINT_STATUS("core.pipeline.partition");
  const QueryPlan& plan = ctx.plan;
  const std::size_t n = ctx.ds->data().num_rows();
  StageScope stage(ctx.trace, "partition");
  ctx.arena.Reset();

  // Amplification subsample: the release may depend only on a single
  // Bernoulli(rate) subsample (dp/amplification.h), so the subsample is
  // drawn HERE, before partitioning, and only its rows are ever gathered
  // into blocks. rate == 1.0 skips the draw entirely, so a full-rate
  // amplified query consumes the exact RNG stream of an unamplified one.
  const bool subsampled = plan.amplification != dp::AmplificationMode::kOff &&
                          plan.sampling_rate < 1.0;
  std::optional<Dataset> subsample;
  if (subsampled) {
    std::vector<std::size_t> keep;
    keep.reserve(static_cast<std::size_t>(
        plan.sampling_rate * static_cast<double>(n) * 1.1) + 16);
    for (std::size_t i = 0; i < n; ++i) {
      if (ctx.rng->Bernoulli(plan.sampling_rate)) {
        keep.push_back(i);
      }
    }
    if (keep.size() < plan.num_blocks) {
      // The block count was fixed at plan time from the *expected*
      // subsample size; repartitioning to the realised size would make the
      // noise scale data-dependent. Refuse instead — an astronomically
      // unlikely tail at any realistic n. The admitted charge stands
      // (conservative direction); retrying draws a fresh subsample.
      stage.set_ok(false);
      return Status::Unavailable(
          "amplification subsample too small for the planned block count "
          "(drew " + std::to_string(keep.size()) + " rows, need " +
          std::to_string(plan.num_blocks) + "); the admitted charge stands, "
          "re-running the query draws a fresh subsample");
    }
    Result<Dataset> gathered = ctx.ds->data().Subset(keep);
    if (!gathered.ok()) {
      stage.set_ok(false);
      return gathered.status();
    }
    subsample.emplace(std::move(gathered).value());
  }
  const Dataset& rows = subsampled ? *subsample : ctx.ds->data();
  const std::size_t n_rows = rows.num_rows();

  // Fused partition+gather: the RNG stream is identical to the old
  // index-plan path, and each block view holds the same rows in the same
  // order the per-block Subset copies used to produce. The BlockSet owns
  // its gathered store, so a temporary subsample dataset is safe.
  Result<BlockSet> partitioned =
      plan.gamma > 1
          ? PartitionResampledView(rows, plan.block_size, plan.gamma,
                                   ctx.rng, &ctx.arena)
          : PartitionDisjointView(
                rows,
                std::max<std::size_t>(1, std::min(plan.num_blocks, n_rows)),
                ctx.rng, &ctx.arena);
  if (!partitioned.ok()) {
    stage.set_ok(false);
    return partitioned.status();
  }
  ctx.blocks = std::move(partitioned).value();
  stage.set_note("l=" + std::to_string(ctx.blocks.num_blocks()) +
                 " beta=" + std::to_string(plan.block_size) +
                 (subsampled ? " m=" + std::to_string(n_rows) : ""));
  ctx.report.num_blocks = ctx.blocks.num_blocks();
  return Status::OK();
}

Status ExecuteBlocksStage::Run(QueryContext& ctx) const {
  GUPT_FAILPOINT_STATUS("core.pipeline.execute_blocks");
  {
    StageScope stage(ctx.trace, "execute_blocks");
    Result<BlockExecutionReport> executed = manager_->ExecuteOnBlocks(
        ctx.spec->program, ctx.blocks, ctx.fallback, ctx.spec->pool_program);
    if (!executed.ok()) {
      stage.set_ok(false);
      return executed.status();
    }
    ctx.exec_report = std::move(executed).value();
    if (ctx.exec_report.fallback_count > 0) {
      stage.set_note("fallbacks=" +
                     std::to_string(ctx.exec_report.fallback_count));
    }
  }
  // Fold the per-block scheduling facts into the trace (coordinator-side,
  // after the fan-out joins — QueryTrace is single-writer).
  if (ctx.trace != nullptr) {
    for (std::size_t i = 0; i < ctx.exec_report.timings.size(); ++i) {
      const BlockTiming& timing = ctx.exec_report.timings[i];
      obs::BlockSpan span;
      span.block_index = i;
      span.worker_id = timing.worker_id;
      span.start_ns = obs::NanosSinceTraceEpoch(timing.start);
      span.duration_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             timing.end - timing.start)
                             .count();
      span.ok = i < ctx.exec_report.runs.size() &&
                !ctx.exec_report.runs[i].used_fallback;
      ctx.trace->AddBlockSpan(span);
    }
  }
  ctx.report.fallback_blocks = ctx.exec_report.fallback_count;
  ctx.report.deadline_exceeded_blocks = ctx.exec_report.deadline_exceeded_count;
  ctx.report.policy_violations = ctx.exec_report.policy_violation_count;
  if (ctx.report.fallback_blocks > 0 || ctx.report.policy_violations > 0) {
    GUPT_LOG(kWarning) << "query '" << ctx.label << "': "
                       << ctx.report.fallback_blocks << "/"
                       << ctx.report.num_blocks << " blocks fell back ("
                       << ctx.report.deadline_exceeded_blocks
                       << " killed at the cycle budget), "
                       << ctx.report.policy_violations << " policy violations";
  }
  ctx.block_outputs = ctx.exec_report.Outputs();
  return Status::OK();
}

Status AggregateStage::Run(QueryContext& ctx) const {
  GUPT_FAILPOINT_STATUS("core.pipeline.aggregate");
  const QuerySpec& spec = *ctx.spec;
  const QueryPlan& plan = ctx.plan;

  if (spec.range.mode == RangeMode::kLoose) {
    StageScope stage(ctx.trace, "range_estimate");
    stage.set_note("loose_outputs");
    // Theorem 1: epsilon/(2p) per output dimension for the percentile pass
    // (just epsilon/2 under per-dimension accounting).
    double p_eff = EffectiveOutputDims(spec, plan.output_dims);
    double epsilon_per_output_dim = plan.epsilon_total / (2.0 * p_eff);
    Result<std::vector<Range>> estimated = EstimateRangesFromBlockOutputs(
        ctx.block_outputs, spec.range.declared_ranges, epsilon_per_output_dim,
        plan.gamma * spec.records_per_user, ctx.rng,
        spec.range.lower_percentile, spec.range.upper_percentile);
    if (!estimated.ok()) {
      stage.set_ok(false);
      return estimated.status();
    }
    ctx.effective_ranges = std::move(estimated).value();
  }

  AggregateOptions agg;
  agg.epsilon_per_dim = plan.epsilon_saf_per_dim;
  agg.output_ranges = ctx.effective_ranges;
  // One *user* touches at most gamma * records_per_user blocks, so the
  // aggregation's sensitivity multiplier is their product (group privacy).
  agg.gamma = plan.gamma * spec.records_per_user;

  {
    StageScope stage(ctx.trace, "clamp_average");
    Result<Row> averaged = ClampAndAverage(ctx.block_outputs, agg.output_ranges);
    if (!averaged.ok()) {
      stage.set_ok(false);
      return averaged.status();
    }
    ctx.averages = std::move(averaged).value();
  }

  {
    StageScope stage(ctx.trace, "noise");
    Result<AggregateResult> noised = AddAggregationNoise(
        ctx.averages, agg, ctx.block_outputs.size(), ctx.rng);
    if (!noised.ok()) {
      stage.set_ok(false);
      return noised.status();
    }
    ctx.aggregate = std::move(noised).value();
  }
  return Status::OK();
}

Status ReleaseStage::Run(QueryContext& ctx) const {
  GUPT_FAILPOINT_STATUS("core.pipeline.release");
  const QueryPlan& plan = ctx.plan;
  QueryReport& report = ctx.report;

  double max_noise_scale = 0.0;
  for (double scale : ctx.aggregate.noise_scale) {
    max_noise_scale = std::max(max_noise_scale, scale);
  }
  metrics_->noise_scale->Set(max_noise_scale);
  metrics_->block_count->Set(static_cast<double>(report.num_blocks));
  metrics_->block_size->Set(static_cast<double>(report.block_size));
  metrics_->gamma->Set(static_cast<double>(report.gamma));
  const bool amplified = plan.amplification != dp::AmplificationMode::kOff;
  if (ctx.trace != nullptr) {
    ctx.trace->SetGauge("epsilon_charged",
                        amplified ? plan.epsilon_charged : plan.epsilon_total);
    ctx.trace->SetGauge("epsilon_saf_per_dim", plan.epsilon_saf_per_dim);
    if (amplified) {
      ctx.trace->SetGauge("epsilon_raw", plan.epsilon_total);
      ctx.trace->SetGauge("sampling_rate", plan.sampling_rate);
    }
    ctx.trace->SetGauge("noise_scale", max_noise_scale);
    ctx.trace->SetGauge("block_count", static_cast<double>(report.num_blocks));
    ctx.trace->SetGauge("block_size", static_cast<double>(report.block_size));
    ctx.trace->SetGauge("gamma", static_cast<double>(report.gamma));
    ctx.trace->SetGauge("fallback_blocks",
                        static_cast<double>(report.fallback_blocks));
    ctx.trace->SetGauge("deadline_exceeded_blocks",
                        static_cast<double>(report.deadline_exceeded_blocks));
    ctx.trace->SetGauge("policy_violations",
                        static_cast<double>(report.policy_violations));
  }

  report.output = std::move(ctx.aggregate.output);
  report.effective_ranges = std::move(ctx.effective_ranges);
  report.elapsed = std::chrono::steady_clock::now() - ctx.admitted_at;
  return Status::OK();
}

}  // namespace gupt
