#include "core/canonical.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace gupt {

Status CanonicalizeGroupsByFirstElement(Row* flat, std::size_t group_size) {
  if (flat == nullptr) {
    return Status::InvalidArgument("flat output is null");
  }
  if (group_size == 0 || flat->size() % group_size != 0) {
    return Status::InvalidArgument(
        "output size " + std::to_string(flat->size()) +
        " is not a multiple of group size " + std::to_string(group_size));
  }
  const std::size_t groups = flat->size() / group_size;
  std::vector<Row> parts(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    parts[g].assign(flat->begin() + static_cast<std::ptrdiff_t>(g * group_size),
                    flat->begin() +
                        static_cast<std::ptrdiff_t>((g + 1) * group_size));
  }
  std::sort(parts.begin(), parts.end());  // lexicographic
  for (std::size_t g = 0; g < groups; ++g) {
    std::copy(parts[g].begin(), parts[g].end(),
              flat->begin() + static_cast<std::ptrdiff_t>(g * group_size));
  }
  return Status::OK();
}

namespace {

class CanonicalizingProgram final : public AnalysisProgram {
 public:
  CanonicalizingProgram(std::unique_ptr<AnalysisProgram> inner,
                        std::size_t group_size)
      : inner_(std::move(inner)), group_size_(group_size) {}

  Result<Row> Run(const Dataset& block) override {
    GUPT_ASSIGN_OR_RETURN(Row out, inner_->Run(block));
    GUPT_RETURN_IF_ERROR(CanonicalizeGroupsByFirstElement(&out, group_size_));
    return out;
  }

  Result<Row> RunWithServices(const Dataset& block,
                              ChamberServices* services) override {
    GUPT_ASSIGN_OR_RETURN(Row out, inner_->RunWithServices(block, services));
    GUPT_RETURN_IF_ERROR(CanonicalizeGroupsByFirstElement(&out, group_size_));
    return out;
  }

  std::size_t output_dims() const override { return inner_->output_dims(); }
  std::string name() const override {
    return inner_->name() + "+canonical";
  }

 private:
  std::unique_ptr<AnalysisProgram> inner_;
  std::size_t group_size_;
};

}  // namespace

ProgramFactory CanonicalizedProgram(ProgramFactory inner,
                                    std::size_t group_size) {
  return [inner = std::move(inner), group_size]() {
    return std::make_unique<CanonicalizingProgram>(inner(), group_size);
  };
}

}  // namespace gupt
