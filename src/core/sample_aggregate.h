// The sample-and-aggregate aggregation step (paper Algorithm 1 + §4.2).
//
// Given per-block outputs O_1..O_l, the released value per output dimension
// is   clamp-average(O_i) + Lap(gamma * |max - min| / (l * epsilon)),
// where gamma is the resampling multiplicity (1 for plain SAF). Since a
// change to one record perturbs at most gamma of the l block outputs, and
// each clamped output moves the average by at most |max-min| / l, the
// average has sensitivity gamma * |max-min| / l — Claim 1's observation
// that with l = gamma*n/beta this equals beta*|max-min| / n, independent of
// gamma, is why resampling is free.

#ifndef GUPT_CORE_SAMPLE_AGGREGATE_H_
#define GUPT_CORE_SAMPLE_AGGREGATE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"

namespace gupt {

struct AggregateOptions {
  /// Privacy budget spent on this aggregation, per output dimension.
  double epsilon_per_dim = 1.0;
  /// Clamp range per output dimension; arity must match the outputs.
  std::vector<Range> output_ranges;
  /// Resampling multiplicity from the BlockPlan.
  std::size_t gamma = 1;
};

/// Result of a differentially private aggregation.
struct AggregateResult {
  /// The private output, one entry per output dimension.
  Row output;
  /// The Laplace scale used per dimension (for diagnostics / allocation).
  Row noise_scale;
};

/// Clamps each block output into the per-dimension range, averages, and
/// adds Laplace noise per dimension. Errors on empty input, arity
/// mismatches, invalid ranges, non-positive epsilon, or gamma == 0.
/// Equivalent to ClampAndAverage followed by AddAggregationNoise; the two
/// halves are exposed so the runtime can time (and trace) clamping and
/// noise addition as separate pipeline stages.
Result<AggregateResult> AggregateBlockOutputs(const std::vector<Row>& outputs,
                                              const AggregateOptions& options,
                                              Rng* rng);

/// The deterministic half of Algorithm 1: clamps every block output into
/// the per-dimension range and averages. The result is NOT private until
/// AddAggregationNoise runs. Validates outputs and ranges.
Result<Row> ClampAndAverage(const std::vector<Row>& outputs,
                            const std::vector<Range>& output_ranges);

/// The noise half of Algorithm 1: adds Laplace(gamma * width / (l *
/// epsilon)) per dimension to an already clamp-averaged row. `num_blocks`
/// is the l the average was taken over. Validates epsilon/gamma.
Result<AggregateResult> AddAggregationNoise(const Row& averages,
                                            const AggregateOptions& options,
                                            std::size_t num_blocks, Rng* rng);

/// The noise scale the aggregation will use: gamma * width / (l * epsilon).
/// Exposed so the budget allocator (§5.2) can compute zeta_i without
/// running the query.
Result<double> AggregationNoiseScale(double range_width, std::size_t num_blocks,
                                     std::size_t gamma, double epsilon);

}  // namespace gupt

#endif  // GUPT_CORE_SAMPLE_AGGREGATE_H_
