#include "core/output_range.h"

#include <utility>

#include "dp/percentile.h"

namespace gupt {

const char* RangeModeToString(RangeMode mode) {
  switch (mode) {
    case RangeMode::kTight:
      return "GUPT-tight";
    case RangeMode::kLoose:
      return "GUPT-loose";
    case RangeMode::kHelper:
      return "GUPT-helper";
  }
  return "?";
}

OutputRangeSpec OutputRangeSpec::Tight(std::vector<Range> ranges) {
  OutputRangeSpec spec;
  spec.mode = RangeMode::kTight;
  spec.declared_ranges = std::move(ranges);
  return spec;
}

OutputRangeSpec OutputRangeSpec::Loose(std::vector<Range> ranges) {
  OutputRangeSpec spec;
  spec.mode = RangeMode::kLoose;
  spec.declared_ranges = std::move(ranges);
  return spec;
}

OutputRangeSpec OutputRangeSpec::Helper(RangeTranslator translator,
                                        std::vector<Range> loose_input_ranges) {
  OutputRangeSpec spec;
  spec.mode = RangeMode::kHelper;
  spec.translator = std::move(translator);
  spec.loose_input_ranges = std::move(loose_input_ranges);
  return spec;
}

Result<std::vector<Range>> EstimateRangesFromBlockOutputs(
    const std::vector<Row>& block_outputs, const std::vector<Range>& loose,
    double epsilon_per_dim, std::size_t gamma, Rng* rng,
    double lower_percentile, double upper_percentile) {
  if (block_outputs.empty()) {
    return Status::InvalidArgument("no block outputs for range estimation");
  }
  if (gamma == 0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  const std::size_t dims = block_outputs[0].size();
  if (loose.size() != dims) {
    return Status::InvalidArgument(
        "loose range arity does not match output dimension");
  }
  std::vector<Range> estimated(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    std::vector<double> column;
    column.reserve(block_outputs.size());
    for (const Row& o : block_outputs) {
      if (o.size() != dims) {
        return Status::InvalidArgument("block outputs have mixed dimensions");
      }
      column.push_back(o[d]);
    }
    // One record appears in gamma blocks, so the rank utility over block
    // outputs has group sensitivity gamma: divide the budget accordingly.
    double epsilon_each =
        epsilon_per_dim / (2.0 * static_cast<double>(gamma));
    GUPT_ASSIGN_OR_RETURN(
        auto quantiles,
        dp::PrivateQuantilePair(column, loose[d].lo, loose[d].hi,
                                lower_percentile, upper_percentile,
                                epsilon_each, rng));
    estimated[d] = Range{quantiles.first, quantiles.second};
  }
  return estimated;
}

Result<std::vector<Range>> EstimateRangesViaTranslator(
    const Dataset& data, const std::vector<Range>& loose_input,
    const RangeTranslator& translator, double epsilon_per_dim,
    std::size_t output_dims, Rng* rng, double lower_percentile,
    double upper_percentile) {
  if (!translator) {
    return Status::InvalidArgument("GUPT-helper requires a range translator");
  }
  if (loose_input.size() != data.num_dims()) {
    return Status::InvalidArgument(
        "loose input range arity does not match dataset dimensions");
  }
  std::vector<Range> tight_input(data.num_dims());
  for (std::size_t d = 0; d < data.num_dims(); ++d) {
    GUPT_ASSIGN_OR_RETURN(std::vector<double> column, data.Column(d));
    GUPT_ASSIGN_OR_RETURN(
        auto quantiles,
        dp::PrivateQuantilePair(column, loose_input[d].lo, loose_input[d].hi,
                                lower_percentile, upper_percentile,
                                epsilon_per_dim / 2.0, rng));
    tight_input[d] = Range{quantiles.first, quantiles.second};
  }
  GUPT_ASSIGN_OR_RETURN(std::vector<Range> output, translator(tight_input));
  if (output.size() != output_dims) {
    return Status::InvalidArgument(
        "range translator returned " + std::to_string(output.size()) +
        " ranges, expected " + std::to_string(output_dims));
  }
  for (const Range& r : output) {
    if (!(r.lo <= r.hi)) {
      return Status::InvalidArgument("range translator returned lo > hi");
    }
  }
  return output;
}

}  // namespace gupt
