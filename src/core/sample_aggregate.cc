#include "core/sample_aggregate.h"

#include <cmath>

#include "dp/laplace.h"

namespace gupt {

Result<double> AggregationNoiseScale(double range_width,
                                     std::size_t num_blocks, std::size_t gamma,
                                     double epsilon) {
  if (!(range_width >= 0.0) || !std::isfinite(range_width)) {
    return Status::InvalidArgument("output range width must be >= 0");
  }
  if (num_blocks == 0) {
    return Status::InvalidArgument("num_blocks must be >= 1");
  }
  if (gamma == 0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  return static_cast<double>(gamma) * range_width /
         (static_cast<double>(num_blocks) * epsilon);
}

Result<Row> ClampAndAverage(const std::vector<Row>& outputs,
                            const std::vector<Range>& output_ranges) {
  if (outputs.empty()) {
    return Status::InvalidArgument("no block outputs to aggregate");
  }
  const std::size_t dims = outputs[0].size();
  if (dims == 0) {
    return Status::InvalidArgument("block outputs have zero dimensions");
  }
  if (output_ranges.size() != dims) {
    return Status::InvalidArgument(
        "output_ranges arity does not match block output dimension");
  }
  for (const Range& r : output_ranges) {
    if (!(r.lo <= r.hi) || !std::isfinite(r.lo) || !std::isfinite(r.hi)) {
      return Status::InvalidArgument("invalid output range");
    }
  }

  const std::size_t l = outputs.size();
  Row averages(dims, 0.0);
  for (std::size_t d = 0; d < dims; ++d) {
    const Range& range = output_ranges[d];
    double sum = 0.0;
    for (const Row& o : outputs) {
      if (o.size() != dims) {
        return Status::InvalidArgument("block outputs have mixed dimensions");
      }
      sum += vec::ClampScalar(o[d], range.lo, range.hi);
    }
    averages[d] = sum / static_cast<double>(l);
  }
  return averages;
}

Result<AggregateResult> AddAggregationNoise(const Row& averages,
                                            const AggregateOptions& options,
                                            std::size_t num_blocks, Rng* rng) {
  if (averages.size() != options.output_ranges.size()) {
    return Status::InvalidArgument(
        "output_ranges arity does not match averaged output dimension");
  }
  AggregateResult result;
  result.output.assign(averages.size(), 0.0);
  result.noise_scale.assign(averages.size(), 0.0);
  for (std::size_t d = 0; d < averages.size(); ++d) {
    GUPT_ASSIGN_OR_RETURN(
        double scale,
        AggregationNoiseScale(options.output_ranges[d].width(), num_blocks,
                              options.gamma, options.epsilon_per_dim));
    result.noise_scale[d] = scale;
    result.output[d] =
        (scale == 0.0) ? averages[d] : averages[d] + rng->Laplace(scale);
  }
  return result;
}

Result<AggregateResult> AggregateBlockOutputs(const std::vector<Row>& outputs,
                                              const AggregateOptions& options,
                                              Rng* rng) {
  GUPT_ASSIGN_OR_RETURN(Row averages,
                        ClampAndAverage(outputs, options.output_ranges));
  return AddAggregationNoise(averages, options, outputs.size(), rng);
}

}  // namespace gupt
