// Accuracy-goal to privacy-budget conversion (paper §5.1).
//
// Analysts think in output accuracy, not epsilon. Given a goal "the answer
// should be within a factor rho of the truth with probability 1 - delta",
// GUPT converts it into the *smallest* epsilon that meets it:
//
//   1. The permissible output std-dev follows from Chebyshev:
//          sigma ~= sqrt(delta) * |1 - rho| * f(T_np),
//      taking the aged slice's answer f(T_np) as the truth proxy.
//   2. The output variance at block count n^alpha decomposes (Eq. 3) into
//          C = Var(block outputs) / n^alpha        (estimation)
//          D = 2 s^2 / (epsilon^2 n^(2 alpha))     (Laplace noise)
//      with C measured on the aged slice.
//   3. Solve C + D = sigma^2 for epsilon. If C alone already exceeds
//      sigma^2 the goal is unreachable at this block size and the
//      estimator says so rather than silently overspending.

#ifndef GUPT_CORE_BUDGET_ESTIMATOR_H_
#define GUPT_CORE_BUDGET_ESTIMATOR_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {

/// The analyst's accuracy goal for a scalar-output query.
struct AccuracyGoal {
  /// Desired relative accuracy, e.g. 0.90 means "within 10% of the truth".
  double rho = 0.9;
  /// Failure probability, e.g. 0.10 means "with probability 90%".
  double delta = 0.1;
};

struct BudgetEstimate {
  /// The minimal epsilon (per output dimension) meeting the goal.
  double epsilon = 0.0;
  /// The target output std-dev derived from the goal.
  double target_sigma = 0.0;
  /// Estimation-error variance C measured on the aged slice.
  double estimation_variance = 0.0;
  /// Noise variance D the solved epsilon will produce.
  double noise_variance = 0.0;
};

struct BudgetEstimatorOptions {
  AccuracyGoal goal;
  /// Block size beta the query will run with.
  std::size_t block_size = 0;
  /// Output-range width s (aggregation sensitivity numerator).
  double range_width = 0.0;
};

/// Estimates the minimal epsilon for a *scalar-output* program (the §5.1
/// derivation assumes one dimension; multi-output queries take the max
/// epsilon across dimensions by running this per dimension). Costs no
/// privacy budget: only the aged slice is touched.
Result<BudgetEstimate> EstimateBudgetForAccuracy(
    const Dataset& aged, std::size_t private_n, const ProgramFactory& factory,
    const BudgetEstimatorOptions& options, Rng* rng);

}  // namespace gupt

#endif  // GUPT_CORE_BUDGET_ESTIMATOR_H_
