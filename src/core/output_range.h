// Output-range estimation (paper §4.1).
//
// Algorithm 1 needs a per-output-dimension range to clamp block outputs and
// calibrate noise. GUPT offers three ways to obtain it, trading analyst
// effort against privacy budget (Theorem 1):
//
//   GUPT-tight  — the analyst supplies a tight public range; SAF gets the
//                 full budget (epsilon/p per output dimension).
//   GUPT-loose  — the analyst supplies only a loose range; GUPT privately
//                 estimates the 25th/75th percentiles of the *block
//                 outputs* and clamps to that inter-quartile range. The
//                 budget is split evenly between percentile estimation and
//                 SAF (epsilon/2p each, per output dimension).
//   GUPT-helper — the analyst supplies a range *translation function*;
//                 GUPT privately estimates input quartiles (epsilon/2k per
//                 input dimension) and maps them through the translator;
//                 SAF gets epsilon/2p per output dimension.

#ifndef GUPT_CORE_OUTPUT_RANGE_H_
#define GUPT_CORE_OUTPUT_RANGE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {

enum class RangeMode {
  kTight,
  kLoose,
  kHelper,
};

const char* RangeModeToString(RangeMode mode);

/// The analyst's range declaration for one query.
struct OutputRangeSpec {
  RangeMode mode = RangeMode::kTight;
  /// kTight: the tight output ranges (arity p).
  /// kLoose: the loose output ranges (arity p) used to clamp the percentile
  ///         mechanism's candidate space.
  std::vector<Range> declared_ranges;
  /// kHelper only: maps tight input ranges to output ranges.
  RangeTranslator translator;
  /// kHelper only: loose *input* ranges (arity k). When absent, the
  /// dataset's owner-registered input ranges are used.
  std::vector<Range> loose_input_ranges;
  /// Percentile pair used by the loose/helper estimation passes. The
  /// paper's default is the inter-quartile (0.25, 0.75); §4.1 notes a
  /// wider pair (e.g. 0.1, 0.9) suits larger datasets.
  double lower_percentile = 0.25;
  double upper_percentile = 0.75;

  static OutputRangeSpec Tight(std::vector<Range> ranges);
  static OutputRangeSpec Loose(std::vector<Range> ranges);
  static OutputRangeSpec Helper(RangeTranslator translator,
                                std::vector<Range> loose_input_ranges = {});
};

/// Privately shrinks loose output ranges to the inter-quartile range of the
/// per-block outputs. `epsilon_per_dim` is the *total* percentile budget
/// per output dimension (split across the two quartiles); with resampling,
/// one record influences `gamma` block outputs, so the mechanism charges
/// group sensitivity by running at epsilon/(2*gamma) per quartile.
Result<std::vector<Range>> EstimateRangesFromBlockOutputs(
    const std::vector<Row>& block_outputs, const std::vector<Range>& loose,
    double epsilon_per_dim, std::size_t gamma, Rng* rng,
    double lower_percentile = 0.25, double upper_percentile = 0.75);

/// Privately estimates tight input ranges (inter-quartile, epsilon_per_dim
/// total per input dimension) and maps them through the analyst's
/// translator to output ranges. Output arity must equal `output_dims`.
Result<std::vector<Range>> EstimateRangesViaTranslator(
    const Dataset& data, const std::vector<Range>& loose_input,
    const RangeTranslator& translator, double epsilon_per_dim,
    std::size_t output_dims, Rng* rng, double lower_percentile = 0.25,
    double upper_percentile = 0.75);

}  // namespace gupt

#endif  // GUPT_CORE_OUTPUT_RANGE_H_
