// Automatic privacy-budget distribution across queries (paper §5.2).
//
// Running queries f_1..f_m under a shared budget epsilon, GUPT sets
// epsilon_i = (zeta_i / sum_j zeta_j) * epsilon, where zeta_i / epsilon_i
// is the Laplace std-dev query i would incur — so every query ends up with
// the *same* noise std-dev (Example 4: average vs variance should not get
// equal epsilons, because variance is max times more sensitive).
//
// For SAF, zeta_i = sqrt(2) * gamma_i * s_i / l_i: the noise scale numerator
// of AggregationNoiseScale times sqrt(2) (Laplace std-dev = sqrt(2)*scale).

#ifndef GUPT_CORE_BUDGET_ALLOCATOR_H_
#define GUPT_CORE_BUDGET_ALLOCATOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace gupt {

/// Noise profile of one pending query.
struct QueryNoiseProfile {
  std::string label;
  /// zeta: the query's Laplace std-dev per unit of 1/epsilon. For SAF this
  /// is sqrt(2) * gamma * range_width / num_blocks.
  double zeta = 0.0;
};

/// Builds a SAF query's zeta from its plan parameters.
double SafZeta(double range_width, std::size_t num_blocks, std::size_t gamma);

/// Splits `total_epsilon` across the queries proportionally to zeta.
/// Returns one epsilon per profile, in order; they sum to total_epsilon.
/// Errors when any zeta is non-positive or the total budget is invalid.
Result<std::vector<double>> AllocateBudget(
    const std::vector<QueryNoiseProfile>& profiles, double total_epsilon);

/// The common noise std-dev every query attains under the allocation —
/// useful for reporting "this is the accuracy you bought".
Result<double> AllocatedNoiseStdDev(
    const std::vector<QueryNoiseProfile>& profiles, double total_epsilon);

}  // namespace gupt

#endif  // GUPT_CORE_BUDGET_ALLOCATOR_H_
