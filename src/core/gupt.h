// GuptRuntime: the analyst-facing facade (paper Figure 2).
//
// A query couples an untrusted program with an output-range declaration and
// *either* an explicit privacy budget or an accuracy goal; the runtime
// plans blocks, derives and charges the budget, fans the program out across
// isolated execution chambers, and releases a differentially private
// aggregate. The privacy accounting follows Theorem 1:
//
//   GUPT-tight   total epsilon = p * eps_saf
//   GUPT-loose   total epsilon = 2p * eps_saf   (half to output percentiles)
//   GUPT-helper  total epsilon = 2p * eps_saf   (half to input percentiles,
//                                                split over k input dims)
//
// where eps_saf is the SAF aggregation budget per output dimension and p
// the output dimension. The total is charged to the dataset's accountant
// *before* any untrusted code runs (privacy-budget-attack defence).
//
// The runtime itself is a thin driver: the stage logic lives in
// src/core/pipeline/ (see docs/architecture.md), and both Execute and
// ExecuteWithSharedBudget walk the same QueryPipeline.

#ifndef GUPT_CORE_GUPT_H_
#define GUPT_CORE_GUPT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/pipeline/pipeline.h"
#include "core/pipeline/query_context.h"
#include "data/dataset_manager.h"
#include "exec/computation_manager.h"

namespace gupt {

/// Service-provider configuration for a runtime instance.
struct GuptOptions {
  /// Worker threads standing in for cluster nodes; 0 means run blocks
  /// sequentially on the caller's thread.
  std::size_t num_workers = 0;
  /// Execution-chamber policy applied to every block computation.
  ChamberPolicy chamber_policy;
  /// Master seed for all runtime randomness (partitioning and noise).
  /// The default is FIXED so that research runs and tests are exactly
  /// reproducible. A production deployment must supply fresh entropy
  /// (e.g. std::random_device) — reusing a noise stream across restarts
  /// correlates releases, and if the data changes between runs the
  /// difference of two same-noise releases is disclosed exactly.
  std::uint64_t seed = 0x6775707421ULL;  // "gupt!"
  /// Pre-warmed chamber pool (exec/chamber_pool.h); not owned, may be
  /// null. Queries whose spec carries a pool_program token run their
  /// blocks on pool workers instead of forking per block.
  ChamberPool* chamber_pool = nullptr;
};

///// The GUPT service: wraps a DatasetManager and executes queries privately.
/// Thread-safe; queries may be issued concurrently.
class GuptRuntime {
 public:
  GuptRuntime(DatasetManager* manager, GuptOptions options);

  /// Executes one query against a registered dataset.
  Result<QueryReport> Execute(const std::string& dataset_name,
                              const QuerySpec& spec);

  /// Executes a batch under one total budget, distributing it so every
  /// query incurs the same Laplace noise std-dev (§5.2). Queries must have
  /// neither `epsilon` nor `accuracy_goal` set — the allocator decides.
  Result<std::vector<QueryReport>> ExecuteWithSharedBudget(
      const std::string& dataset_name, const std::vector<QuerySpec>& specs,
      double total_epsilon);

  const GuptOptions& options() const { return options_; }

  /// The staged query path both entry points drive (diagnostics / tests).
  const QueryPipeline& pipeline() const { return pipeline_; }

 private:
  Rng ForkRng();

  DatasetManager* manager_;  // not owned
  GuptOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  ComputationManager computation_manager_;
  QueryPipeline pipeline_;
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace gupt

#endif  // GUPT_CORE_GUPT_H_
