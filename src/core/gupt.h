// GuptRuntime: the analyst-facing facade (paper Figure 2).
//
// A query couples an untrusted program with an output-range declaration and
// *either* an explicit privacy budget or an accuracy goal; the runtime
// plans blocks, derives and charges the budget, fans the program out across
// isolated execution chambers, and releases a differentially private
// aggregate. The privacy accounting follows Theorem 1:
//
//   GUPT-tight   total epsilon = p * eps_saf
//   GUPT-loose   total epsilon = 2p * eps_saf   (half to output percentiles)
//   GUPT-helper  total epsilon = 2p * eps_saf   (half to input percentiles,
//                                                split over k input dims)
//
// where eps_saf is the SAF aggregation budget per output dimension and p
// the output dimension. The total is charged to the dataset's accountant
// *before* any untrusted code runs (privacy-budget-attack defence).

#ifndef GUPT_CORE_GUPT_H_
#define GUPT_CORE_GUPT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/budget_estimator.h"
#include "core/output_range.h"
#include "data/dataset_manager.h"
#include "exec/computation_manager.h"
#include "exec/program.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gupt {

/// Service-provider configuration for a runtime instance.
struct GuptOptions {
  /// Worker threads standing in for cluster nodes; 0 means run blocks
  /// sequentially on the caller's thread.
  std::size_t num_workers = 0;
  /// Execution-chamber policy applied to every block computation.
  ChamberPolicy chamber_policy;
  /// Master seed for all runtime randomness (partitioning and noise).
  /// The default is FIXED so that research runs and tests are exactly
  /// reproducible. A production deployment must supply fresh entropy
  /// (e.g. std::random_device) — reusing a noise stream across restarts
  /// correlates releases, and if the data changes between runs the
  /// difference of two same-noise releases is disclosed exactly.
  std::uint64_t seed = 0x6775707421ULL;  // "gupt!"
};

/// How the declared epsilon maps onto per-dimension mechanism budgets.
enum class BudgetAccounting {
  /// Theorem 1 (default): the declared epsilon is the query's total; it is
  /// split across the p output dimensions (and halved for range
  /// estimation in loose/helper modes).
  kTheorem1,
  /// The paper's evaluation configuration: the declared epsilon applies to
  /// each released output dimension (the formal guarantee is then p * eps
  /// for a p-dimensional output). The accountant is still charged only the
  /// declared epsilon, matching how the paper reports its x-axes.
  kPerDimension,
};

/// One analyst query.
struct QuerySpec {
  /// Fresh-instance factory for the untrusted program.
  ProgramFactory program;
  /// Output-range declaration (tight / loose / helper).
  OutputRangeSpec range;

  /// Explicit privacy budget for the whole query. Exactly one of `epsilon`
  /// and `accuracy_goal` must be set.
  std::optional<double> epsilon;
  /// Accuracy goal to be converted into a budget (§5.1); requires the
  /// dataset to have an aged slice and the program to output one dimension.
  std::optional<AccuracyGoal> accuracy_goal;

  /// Explicit block size beta. When absent the runtime uses the aged-data
  /// planner if `optimize_block_size` is set and an aged slice exists, and
  /// otherwise the paper's default of n^0.6 (l = n^0.4 blocks).
  std::optional<std::size_t> block_size;
  bool optimize_block_size = false;
  /// Resampling factor gamma (§4.2); 1 disables resampling.
  std::size_t gamma = 1;
  /// Epsilon interpretation for multi-dimensional outputs.
  BudgetAccounting accounting = BudgetAccounting::kTheorem1;
  /// User-level privacy (paper §8.1): when one user may own up to this
  /// many records, all sensitivities are scaled by it (group privacy), so
  /// the release is epsilon-DP at the *user* level. 1 = record-level DP.
  std::size_t records_per_user = 1;
};

/// What the analyst gets back, plus runtime diagnostics.
struct QueryReport {
  /// The differentially private output.
  Row output;
  /// Total budget charged to the dataset.
  double epsilon_spent = 0.0;
  /// SAF aggregation budget per output dimension.
  double epsilon_saf_per_dim = 0.0;
  std::size_t block_size = 0;
  std::size_t num_blocks = 0;
  std::size_t gamma = 1;
  /// The clamp ranges actually used for aggregation.
  std::vector<Range> effective_ranges;
  /// Chamber diagnostics (visible to the trusted operator only).
  std::size_t fallback_blocks = 0;
  std::size_t deadline_exceeded_blocks = 0;
  std::size_t policy_violations = 0;
  std::chrono::nanoseconds elapsed{0};
  /// Per-stage timings and DP gauges for this query (operator-visible
  /// diagnostics; see docs/observability.md for the stage vocabulary).
  obs::QueryTrace trace;
};

///// The GUPT service: wraps a DatasetManager and executes queries privately.
/// Thread-safe; queries may be issued concurrently.
class GuptRuntime {
 public:
  GuptRuntime(DatasetManager* manager, GuptOptions options);

  /// Executes one query against a registered dataset.
  Result<QueryReport> Execute(const std::string& dataset_name,
                              const QuerySpec& spec);

  /// Executes a batch under one total budget, distributing it so every
  /// query incurs the same Laplace noise std-dev (§5.2). Queries must have
  /// neither `epsilon` nor `accuracy_goal` set — the allocator decides.
  Result<std::vector<QueryReport>> ExecuteWithSharedBudget(
      const std::string& dataset_name, const std::vector<QuerySpec>& specs,
      double total_epsilon);

  const GuptOptions& options() const { return options_; }

 private:
  /// Everything decided about a query before any budget is charged.
  struct QueryPlan {
    std::size_t output_dims = 0;
    std::size_t block_size = 0;
    std::size_t num_blocks = 0;
    std::size_t gamma = 1;
    double epsilon_saf_per_dim = 0.0;
    double epsilon_total = 0.0;
    /// Ranges known before execution (declared, or helper-translated from
    /// *loose* inputs for width estimation); loose mode refines after.
    std::vector<Range> planning_ranges;
  };

  /// `trace` may be null (e.g. provisional planning); stage metrics are
  /// still recorded in the process-global registry.
  Result<QueryPlan> PlanQuery(const RegisteredDataset& ds,
                              const QuerySpec& spec, Rng* rng,
                              obs::QueryTrace* trace) const;
  Result<QueryReport> ExecutePlanned(RegisteredDataset& ds,
                                     const QuerySpec& spec,
                                     const QueryPlan& plan, Rng* rng,
                                     obs::QueryTrace* trace) const;
  /// Wraps ExecutePlanned with the query-level metrics and the outcome
  /// counter; moves `*trace` into the report on success.
  Result<QueryReport> ExecuteTraced(RegisteredDataset& ds,
                                    const QuerySpec& spec,
                                    const QueryPlan& plan, Rng* rng,
                                    obs::QueryTrace* trace) const;

  Rng ForkRng();

  DatasetManager* manager_;  // not owned
  GuptOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  ComputationManager computation_manager_;
  std::mutex rng_mu_;
  Rng rng_;

  /// Observability handles (process-global registry).
  struct Metrics {
    obs::Counter* queries_ok;
    obs::Counter* queries_error;
    obs::Histogram* query_duration;
    obs::Counter* epsilon_charged;
    obs::Gauge* noise_scale;
    obs::Gauge* block_count;
    obs::Gauge* block_size;
    obs::Gauge* gamma;
  };
  Metrics metrics_;
};

}  // namespace gupt

#endif  // GUPT_CORE_GUPT_H_
