#include "core/aging.h"

#include <algorithm>
#include <cmath>

#include "data/partitioner.h"

namespace gupt {

Result<AgedRunStats> ComputeAgedRunStats(const Dataset& aged,
                                         const ProgramFactory& factory,
                                         std::size_t block_size, Rng* rng) {
  if (!factory) {
    return Status::InvalidArgument("program factory is null");
  }
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be >= 1");
  }
  if (block_size > aged.num_rows()) {
    return Status::InvalidArgument(
        "block_size " + std::to_string(block_size) +
        " exceeds aged slice size " + std::to_string(aged.num_rows()));
  }

  AgedRunStats stats;
  {
    std::unique_ptr<AnalysisProgram> program = factory();
    GUPT_ASSIGN_OR_RETURN(stats.whole_output, program->Run(aged));
  }
  const std::size_t dims = stats.whole_output.size();

  const std::size_t num_blocks =
      std::max<std::size_t>(1, aged.num_rows() / block_size);
  GUPT_ASSIGN_OR_RETURN(BlockSet blocks,
                        PartitionDisjointView(aged, num_blocks, rng));
  for (std::size_t b = 0; b < blocks.num_blocks(); ++b) {
    Dataset block = blocks.block(b);
    std::unique_ptr<AnalysisProgram> program = factory();
    Result<Row> out = program->Run(block);
    if (!out.ok() || out.value().size() != dims) continue;  // training signal only
    stats.block_outputs.push_back(std::move(out).value());
  }
  if (stats.block_outputs.empty()) {
    return Status::NumericalError(
        "program failed on every aged block; cannot estimate statistics");
  }

  stats.block_mean.assign(dims, 0.0);
  for (const Row& o : stats.block_outputs) {
    vec::AddInPlace(&stats.block_mean, o);
  }
  vec::ScaleInPlace(&stats.block_mean,
                    1.0 / static_cast<double>(stats.block_outputs.size()));

  stats.block_variance.assign(dims, 0.0);
  for (const Row& o : stats.block_outputs) {
    for (std::size_t d = 0; d < dims; ++d) {
      double delta = o[d] - stats.block_mean[d];
      stats.block_variance[d] += delta * delta;
    }
  }
  vec::ScaleInPlace(&stats.block_variance,
                    1.0 / static_cast<double>(stats.block_outputs.size()));
  return stats;
}

Result<Row> EstimateQueryMagnitude(const Dataset& aged,
                                   const ProgramFactory& factory) {
  if (!factory) {
    return Status::InvalidArgument("program factory is null");
  }
  std::unique_ptr<AnalysisProgram> program = factory();
  GUPT_ASSIGN_OR_RETURN(Row out, program->Run(aged));
  for (double& x : out) x = std::fabs(x);
  return out;
}

}  // namespace gupt
