#include "core/budget_estimator.h"

#include <algorithm>
#include <cmath>

#include "core/aging.h"

namespace gupt {

Result<BudgetEstimate> EstimateBudgetForAccuracy(
    const Dataset& aged, std::size_t private_n, const ProgramFactory& factory,
    const BudgetEstimatorOptions& options, Rng* rng) {
  const AccuracyGoal& goal = options.goal;
  if (!(goal.rho > 0.0 && goal.rho < 1.0)) {
    return Status::InvalidArgument("accuracy rho must be in (0, 1)");
  }
  if (!(goal.delta > 0.0 && goal.delta < 1.0)) {
    return Status::InvalidArgument("failure probability delta must be in (0, 1)");
  }
  if (options.block_size == 0 || options.block_size > private_n) {
    return Status::InvalidArgument("block_size must be in [1, n]");
  }
  if (!(options.range_width > 0.0) || !std::isfinite(options.range_width)) {
    return Status::InvalidArgument("range_width must be positive");
  }
  if (private_n == 0) {
    return Status::InvalidArgument("private dataset is empty");
  }

  // alpha = max{0, log(n / beta)} in the paper's notation means the block
  // count is l = n / beta, i.e. n^alpha = n / beta.
  const double n = static_cast<double>(private_n);
  const double num_blocks =
      std::max(1.0, n / static_cast<double>(options.block_size));

  std::size_t aged_block_size =
      std::min<std::size_t>(options.block_size, aged.num_rows());
  if (aged.num_rows() / aged_block_size < 2) {
    // A single aged block yields a zero variance estimate for C, which
    // would make any accuracy goal look attainable. Demand enough aged
    // data for at least two blocks.
    if (aged_block_size < 2) {
      return Status::InvalidArgument("aged slice too small to estimate from");
    }
    aged_block_size = aged.num_rows() / 2;
  }
  GUPT_ASSIGN_OR_RETURN(AgedRunStats stats,
                        ComputeAgedRunStats(aged, factory, aged_block_size, rng));
  if (stats.whole_output.size() != 1) {
    return Status::InvalidArgument(
        "budget estimation applies to scalar-output programs; run it per "
        "dimension for multi-output queries");
  }

  BudgetEstimate estimate;
  // sigma ~= sqrt(delta) * |1 - rho| * f(T_np).
  estimate.target_sigma = std::sqrt(goal.delta) * std::fabs(1.0 - goal.rho) *
                          std::fabs(stats.whole_output[0]);
  if (!(estimate.target_sigma > 0.0)) {
    return Status::NumericalError(
        "accuracy goal yields a zero noise allowance (is f(T_np) zero?)");
  }
  // C: variance of the block-output mean = Var(block outputs) / l.
  estimate.estimation_variance = stats.block_variance[0] / num_blocks;

  double sigma_sq = estimate.target_sigma * estimate.target_sigma;
  if (estimate.estimation_variance >= sigma_sq) {
    return Status::NumericalError(
        "accuracy goal unattainable at this block size: estimation variance " +
        std::to_string(estimate.estimation_variance) +
        " already exceeds target variance " + std::to_string(sigma_sq));
  }
  // Solve C + 2 s^2 / (epsilon^2 l^2) = sigma^2 for epsilon.
  double allowed_noise_variance = sigma_sq - estimate.estimation_variance;
  estimate.epsilon =
      std::sqrt(2.0) * options.range_width /
      (num_blocks * std::sqrt(allowed_noise_variance));
  estimate.noise_variance = allowed_noise_variance;
  return estimate;
}

}  // namespace gupt
