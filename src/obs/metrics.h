// Process-global metrics registry for the GUPT runtime.
//
// A hosted DP service must answer, after the fact, where each dataset's
// budget went, what each query cost, and where the time was spent (paper
// §3.1/§6). This registry is the numeric half of that story: named
// counters, gauges, and fixed-bucket histograms with label support, a
// lock-free hot path (registration takes a mutex once; increments are
// relaxed atomics on stable handles), and two exporters — the Prometheus
// text exposition format and JSON.
//
// Naming convention (enforced by tools/check_metrics_names.py and by
// IsValidMetricName): `gupt_<subsystem>_<name>_<unit>`, all lower-case
// ASCII words joined by underscores, with the final word drawn from a
// fixed unit vocabulary (seconds, bytes, total, count, ratio, epsilon,
// scale, depth). Examples:
//
//   gupt_dp_epsilon_charged_total        counter
//   gupt_runtime_stage_duration_seconds  histogram{stage=...}
//   gupt_threadpool_queue_depth_count    gauge
//
// This library is deliberately dependency-free (std only) so the lowest
// layers (thread pool, logging) can emit metrics without a cycle.

#ifndef GUPT_OBS_METRICS_H_
#define GUPT_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gupt {
namespace obs {

/// Label set attached to one instrument, e.g. {{"stage", "partition"}}.
/// Order-insensitive: the registry canonicalises by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value. Increments are wait-free on platforms
/// with native double CAS; never decreases.
class Counter {
 public:
  void Increment(double delta = 1.0);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are inclusive upper edges
/// ("le" in Prometheus terms); an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  void Observe(double value);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket; the +Inf bucket reports the largest finite bound.
  /// Returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Non-cumulative per-bucket counts; last entry is the +Inf bucket.
  std::vector<std::uint64_t> BucketCounts() const;

  /// Exponential duration buckets (seconds) from 1us to ~100s.
  static std::vector<double> DurationBuckets();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;  // strictly increasing, finite
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 cells
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One instrument's value at a sampling instant, as enumerated by
/// MetricsRegistry::CollectSamples() for the time-series collector.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;  // canonical (sorted) order
  double value = 0.0;  // counter / gauge
  // Histogram-only fields:
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Registry of named instrument families. `Get()` is the process-global
/// instance that all runtime components use; separate instances can be
/// constructed for tests. Handles returned by the getters are stable for
/// the registry's lifetime and safe to use from any thread.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Get();

  /// Finds or creates the instrument for (name, labels). Type conflicts
  /// (same family name registered as a different kind) return the existing
  /// family's instrument when kinds match, or a fresh detached instrument
  /// (never exported) on mismatch — misuse must not crash the service.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  /// `bounds` must be strictly increasing and finite; only the first
  /// registration's bounds are kept for a family.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const Labels& labels = {});

  /// Prometheus text exposition format (version 0.0.4): HELP/TYPE headers,
  /// one sample line per instrument, histograms expanded into cumulative
  /// `_bucket{le=...}`, `_sum`, and `_count` series. Families appear in
  /// name order, label sets in canonical (sorted) order.
  std::string ExportPrometheus() const;

  /// JSON dump: {"metrics": [{"name", "type", "help", "series": [...]}]}.
  /// Histogram series additionally carry interpolated "p50"/"p95"/"p99"
  /// alongside count/sum/buckets.
  std::string ExportJson() const;

  /// Every instrument's current value, families in name order and label
  /// sets in canonical order — the SeriesCollector's sampling surface.
  /// Histogram samples carry interpolated p50/p95/p99.
  std::vector<MetricSample> CollectSamples() const;

  /// Zeroes every value while keeping registrations and handles valid.
  void Reset();

  /// `gupt_<subsystem>_<name>_<unit>` check; see the header comment.
  static bool IsValidMetricName(const std::string& name);

  /// Names that failed IsValidMetricName at registration. They register
  /// and export normally (observability must not drop data), but tests
  /// and the name lint assert this list stays empty.
  std::vector<std::string> invalid_names() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind;
    std::string help;
    std::vector<double> bounds;  // histograms only
    // Canonical label serialisation -> instrument. std::map keeps export
    // order deterministic.
    std::map<std::string, Instrument> series;
    std::map<std::string, Labels> series_labels;
  };

  Instrument* FindOrCreate(const std::string& name, const std::string& help,
                           Kind kind, const Labels& labels,
                           std::vector<double> bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::vector<std::string> invalid_names_;
  // Type-conflict fallbacks: kept alive but never exported.
  std::vector<std::unique_ptr<Counter>> orphan_counters_;
  std::vector<std::unique_ptr<Gauge>> orphan_gauges_;
  std::vector<std::unique_ptr<Histogram>> orphan_histograms_;
};

}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_METRICS_H_
