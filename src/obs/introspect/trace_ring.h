// Bounded ring of recently completed query traces.
//
// The metrics registry aggregates; the audit log narrates one line per
// query; this ring keeps the *full* trace of the last N executions — stage
// spans, per-block spans with worker-thread ids, DP gauges — so /tracez
// can export a cross-thread timeline of what the service just did without
// unbounded memory growth. Oldest traces rotate out; the total-pushed
// counter makes rotation detectable.

#ifndef GUPT_OBS_INTROSPECT_TRACE_RING_H_
#define GUPT_OBS_INTROSPECT_TRACE_RING_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gupt {
namespace obs {
namespace introspect {

/// One finished query execution with the context /tracez needs to label it.
struct CompletedTrace {
  std::uint64_t query_id = 0;
  std::string dataset;
  std::string program;
  std::string analyst;
  bool ok = true;
  /// Stable ThreadPool worker id of the coordinating (admission) thread;
  /// 0 when the query ran on a non-pool thread. Stage spans render on this
  /// thread lane, block spans on their own workers' lanes.
  int coordinator_tid = 0;
  std::chrono::system_clock::time_point completed_at{};
  QueryTrace trace;
};

/// Thread-safe bounded FIFO of CompletedTraces.
class TraceRing {
 public:
  /// `capacity` of 0 disables retention entirely (Push becomes a no-op).
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void Push(CompletedTrace trace);

  /// Copy of the retained traces, oldest first.
  std::vector<CompletedTrace> Snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Traces ever pushed (kept + rotated out).
  std::uint64_t total_pushed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<CompletedTrace> ring_;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace introspect
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_INTROSPECT_TRACE_RING_H_
