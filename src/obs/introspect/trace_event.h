// Chrome trace_event serialization for completed query traces.
//
// Emits the JSON object format understood by chrome://tracing and Perfetto
// (https://ui.perfetto.dev): complete events ("ph":"X") with microsecond
// timestamps, one pid for the whole process, and tid = the stable
// ThreadPool worker id, so a resampled query's block fan-out renders as
// parallel spans on distinct thread lanes, correlated by the query_id
// argument on every span.

#ifndef GUPT_OBS_INTROSPECT_TRACE_EVENT_H_
#define GUPT_OBS_INTROSPECT_TRACE_EVENT_H_

#include <string>
#include <vector>

#include "obs/introspect/trace_ring.h"

namespace gupt {
namespace obs {
namespace introspect {

/// Serialises `traces` (oldest first, as returned by TraceRing::Snapshot)
/// into one self-contained Chrome trace_event JSON document:
///
///   * per query: an enclosing "query <id> <program>" span on the
///     coordinator's lane, one span per pipeline stage (cat "stage"), and
///     one span per block execution (cat "block") on its worker's lane;
///   * thread_name metadata events labelling lane 0 "coordinator" and
///     lane N "worker-N";
///   * the trace's DP gauges as args on the enclosing query span.
///
/// Stage spans that predate start offsets (start_ns < 0) are laid
/// end-to-end from the query's first known timestamp instead of dropped.
std::string ExportChromeTrace(const std::vector<CompletedTrace>& traces);

}  // namespace introspect
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_INTROSPECT_TRACE_EVENT_H_
