#include "obs/introspect/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

namespace gupt {
namespace obs {
namespace introspect {
namespace {

/// Per-connection socket timeout. Introspection clients are curl and
/// Prometheus; anything slower than this is stuck and gets dropped.
constexpr int kSocketTimeoutMs = 2000;

/// Request-size cap: an introspection request is one line plus headers.
constexpr std::size_t kMaxRequestBytes = 16 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void SetSocketTimeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kSocketTimeoutMs / 1000;
  tv.tv_usec = (kSocketTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Decodes %xx escapes and '+' in query components (enough for format=...
/// style parameters; invalid escapes pass through verbatim).
std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out += ' ';
    } else if (text[i] == '%' && i + 2 < text.size() &&
               std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
      out += static_cast<char>(
          std::stoi(text.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

void ParseQueryParams(const std::string& query,
                      std::map<std::string, std::string>* params) {
  std::size_t start = 0;
  while (start < query.size()) {
    std::size_t amp = query.find('&', start);
    if (amp == std::string::npos) amp = query.size();
    std::string piece = query.substr(start, amp - start);
    std::size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      if (!piece.empty()) (*params)[UrlDecode(piece)] = "";
    } else {
      (*params)[UrlDecode(piece.substr(0, eq))] =
          UrlDecode(piece.substr(eq + 1));
    }
    start = amp + 1;
  }
}

/// Writes the whole buffer, tolerating short writes; false on error.
bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  if (WriteAll(fd, head.data(), head.size())) {
    WriteAll(fd, response.body.data(), response.body.size());
  }
}

}  // namespace

std::string HttpRequest::Param(const std::string& key,
                               const std::string& fallback) const {
  auto it = query_params.find(key);
  return it == query_params.end() ? fallback : it->second;
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.handler_threads < 1) options_.handler_threads = 1;
  MetricsRegistry& registry = MetricsRegistry::Get();
  requests_unknown_ = registry.GetCounter(
      "gupt_introspect_requests_total",
      "Introspection HTTP requests served, by endpoint path.",
      {{"path", "unknown"}});
  request_duration_ = registry.GetHistogram(
      "gupt_introspect_request_duration_seconds",
      "Wall time spent serving one introspection request (parse through "
      "last byte written).",
      Histogram::DurationBuckets());
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[path] = std::move(handler);
  path_counters_[path] = MetricsRegistry::Get().GetCounter(
      "gupt_introspect_requests_total",
      "Introspection HTTP requests served, by endpoint path.",
      {{"path", path}});
}

bool HttpServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket()");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) {
      *error = "invalid bind address: " + options_.bind_address;
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind(" + options_.bind_address + ":" +
                std::to_string(options_.port) + ")");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen()");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname()");
  }
  port_ = ntohs(bound.sin_port);

  {
    std::lock_guard<std::mutex> lock(mu_);
    serving_ = true;
    stopping_ = false;
  }
  listener_ = std::thread([this] { ListenerLoop(); });
  handler_pool_.reserve(options_.handler_threads);
  for (std::size_t i = 0; i < options_.handler_threads; ++i) {
    handler_pool_.emplace_back([this] { HandlerLoop(); });
  }
  return true;
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!serving_) return;
    stopping_ = true;
  }
  connection_ready_.notify_all();
  if (listener_.joinable()) listener_.join();
  for (std::thread& t : handler_pool_) {
    if (t.joinable()) t.join();
  }
  handler_pool_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : pending_connections_) ::close(fd);
    pending_connections_.clear();
    serving_ = false;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool HttpServer::serving() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serving_ && !stopping_;
}

void HttpServer::ListenerLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // A short poll keeps Stop() latency bounded without a wakeup pipe.
    int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.on_accept && !options_.on_accept()) {
      ::close(fd);
      continue;
    }
    SetSocketTimeouts(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_connections_.push_back(fd);
    }
    connection_ready_.notify_one();
  }
}

void HttpServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      connection_ready_.wait(lock, [this] {
        return stopping_ || !pending_connections_.empty();
      });
      if (pending_connections_.empty()) return;  // stopping, queue drained
      fd = pending_connections_.front();
      pending_connections_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  const auto started = std::chrono::steady_clock::now();

  // Read until the end of the header block (introspection requests carry
  // no body) or the size cap.
  std::string raw;
  char buf[2048];
  while (raw.size() < kMaxRequestBytes &&
         raw.find("\r\n\r\n") == std::string::npos &&
         raw.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  std::size_t line_end = raw.find_first_of("\r\n");
  std::string request_line =
      line_end == std::string::npos ? raw : raw.substr(0, line_end);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "malformed request line\n";
    WriteResponse(fd, response);
    return;
  }

  HttpRequest request;
  request.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::size_t qmark = target.find('?');
  request.path = target.substr(0, qmark);
  if (qmark != std::string::npos) {
    request.query_string = target.substr(qmark + 1);
    ParseQueryParams(request.query_string, &request.query_params);
  }

  if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "only GET is supported\n";
    WriteResponse(fd, response);
    return;
  }

  HttpHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) {
      handler = it->second;
      path_counters_[request.path]->Increment();
    }
  }
  if (handler) {
    response = handler(request);
  } else if (request.path == "/") {
    // Generated index: one line per registered endpoint.
    response.body = "gupt introspection server\n\nendpoints:\n";
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [path, unused] : handlers_) {
      (void)unused;
      response.body += "  " + path + "\n";
    }
  } else {
    requests_unknown_->Increment();
    response.status = 404;
    response.body = "no handler for " + request.path + "\n";
  }
  if (request.method == "HEAD") response.body.clear();
  WriteResponse(fd, response);
  request_duration_->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());
}

}  // namespace introspect
}  // namespace obs
}  // namespace gupt
