#include "obs/introspect/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace gupt {
namespace obs {
namespace introspect {
namespace {

/// Case-insensitive prefix match for header names.
bool HeaderIs(const std::string& line, const char* name) {
  std::size_t n = std::strlen(name);
  if (line.size() < n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    char a = line[i];
    char b = name[i];
    if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
    if (b >= 'A' && b <= 'Z') b = static_cast<char>(b - 'A' + 'a');
    if (a != b) return false;
  }
  return true;
}

std::string Trim(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  std::size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

}  // namespace

HttpGetResult HttpGet(const std::string& host, int port,
                      const std::string& target, int timeout_ms) {
  HttpGetResult result;
  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.error = what + ": " + std::strerror(errno);
    return result;
  };

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket()");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    result.error = "invalid host address: " + host;
    return result;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    HttpGetResult out = fail("connect(" + host + ":" + std::to_string(port) +
                             ")");
    ::close(fd);
    return out;
  }

  std::string request = "GET " + target + " HTTP/1.0\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      HttpGetResult out = fail("send()");
      ::close(fd);
      return out;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      HttpGetResult out = fail("recv()");
      ::close(fd);
      return out;
    }
    if (n == 0) break;  // server closed: response complete
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::size_t header_end = raw.find("\r\n\r\n");
  std::size_t body_start;
  if (header_end != std::string::npos) {
    body_start = header_end + 4;
  } else {
    header_end = raw.find("\n\n");
    if (header_end == std::string::npos) {
      result.error = "truncated response (no header terminator)";
      return result;
    }
    body_start = header_end + 2;
  }

  std::string head = raw.substr(0, header_end);
  std::size_t status_sp = head.find(' ');
  if (status_sp == std::string::npos) {
    result.error = "malformed status line";
    return result;
  }
  result.status = std::atoi(head.c_str() + status_sp + 1);

  std::size_t line_start = 0;
  while (line_start < head.size()) {
    std::size_t line_end = head.find('\n', line_start);
    if (line_end == std::string::npos) line_end = head.size();
    std::string line = head.substr(line_start, line_end - line_start);
    if (HeaderIs(line, "content-type:")) {
      result.content_type = Trim(line.substr(std::strlen("content-type:")));
    }
    line_start = line_end + 1;
  }

  result.body = raw.substr(body_start);
  result.ok = true;
  return result;
}

}  // namespace introspect
}  // namespace obs
}  // namespace gupt
