#include "obs/introspect/trace_event.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <set>

namespace gupt {
namespace obs {
namespace introspect {
namespace {

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with nanosecond precision, as trace_event "ts"/"dur" want.
std::string Micros(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

std::string JsonNumber(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// One complete event ("ph":"X"). `extra_args` is a pre-rendered fragment
/// like ",\"note\":\"...\"" appended inside the args object.
std::string CompleteEvent(const std::string& name, const std::string& cat,
                          int tid, std::int64_t ts_ns, std::int64_t dur_ns,
                          std::uint64_t query_id,
                          const std::string& extra_args) {
  std::string out = "{\"name\":\"" + EscapeJson(name) + "\",\"cat\":\"" + cat +
                    "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
                    ",\"ts\":" + Micros(ts_ns) +
                    ",\"dur\":" + Micros(std::max<std::int64_t>(dur_ns, 1)) +
                    ",\"args\":{\"query_id\":" + std::to_string(query_id) +
                    extra_args + "}}";
  return out;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<CompletedTrace>& traces) {
  std::string events;
  std::set<int> tids;
  auto append = [&events](const std::string& event) {
    if (!events.empty()) events += ",\n";
    events += event;
  };

  for (const CompletedTrace& completed : traces) {
    const QueryTrace& trace = completed.trace;
    tids.insert(completed.coordinator_tid);

    // The query's extent on the shared timeline: earliest known start to
    // latest known end across stage and block spans.
    std::int64_t first_start = -1;
    std::int64_t last_end = 0;
    for (const SpanRecord& span : trace.spans()) {
      if (span.start_ns < 0) continue;
      if (first_start < 0 || span.start_ns < first_start) {
        first_start = span.start_ns;
      }
      last_end = std::max(last_end, span.start_ns + span.duration.count());
    }
    for (const BlockSpan& span : trace.block_spans()) {
      if (first_start < 0 || span.start_ns < first_start) {
        first_start = span.start_ns;
      }
      last_end = std::max(last_end, span.start_ns + span.duration_ns);
    }
    if (first_start < 0) first_start = 0;
    if (last_end < first_start) {
      last_end = first_start + trace.TotalDuration().count();
    }

    // Enclosing per-query span carrying the labels and DP gauges.
    std::string query_args;
    query_args += ",\"dataset\":\"" + EscapeJson(completed.dataset) + "\"";
    query_args += ",\"program\":\"" + EscapeJson(completed.program) + "\"";
    query_args += ",\"analyst\":\"" + EscapeJson(completed.analyst) + "\"";
    query_args += std::string(",\"ok\":") + (completed.ok ? "true" : "false");
    for (const auto& [name, value] : trace.gauges()) {
      query_args += ",\"" + EscapeJson(name) + "\":" + JsonNumber(value);
    }
    append(CompleteEvent(
        "query " + std::to_string(trace.query_id()) + " " + completed.program,
        "query", completed.coordinator_tid, first_start,
        last_end - first_start, trace.query_id(), query_args));

    // Stage spans on the coordinator's lane. Spans without a recorded
    // start are laid end-to-end from the query's first timestamp.
    std::int64_t cursor = first_start;
    for (const SpanRecord& span : trace.spans()) {
      std::int64_t start = span.start_ns >= 0 ? span.start_ns : cursor;
      cursor = start + span.duration.count();
      std::string args = std::string(",\"ok\":") + (span.ok ? "true" : "false");
      if (!span.note.empty()) {
        args += ",\"note\":\"" + EscapeJson(span.note) + "\"";
      }
      append(CompleteEvent(span.name, "stage", completed.coordinator_tid,
                           start, span.duration.count(), trace.query_id(),
                           args));
    }

    // Block spans on their worker threads' lanes: this is where a gamma>1
    // fan-out becomes visibly cross-thread.
    for (const BlockSpan& span : trace.block_spans()) {
      tids.insert(span.worker_id);
      std::string args = ",\"block\":" + std::to_string(span.block_index) +
                         ",\"ok\":" + (span.ok ? "true" : "false");
      append(CompleteEvent("block", "block", span.worker_id, span.start_ns,
                           span.duration_ns, trace.query_id(), args));
    }
  }

  // Thread-name metadata so the lanes are labelled in the viewer.
  std::string metadata;
  for (int tid : tids) {
    std::string name =
        tid == 0 ? "main-thread" : "pool-worker-" + std::to_string(tid);
    if (!metadata.empty()) metadata += ",\n";
    metadata += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
                std::to_string(tid) + ",\"args\":{\"name\":\"" + name +
                "\"}}";
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += metadata;
  if (!metadata.empty() && !events.empty()) out += ",\n";
  out += events;
  out += "\n]}\n";
  return out;
}

}  // namespace introspect
}  // namespace obs
}  // namespace gupt
