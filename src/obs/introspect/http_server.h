// Live introspection server: a small blocking HTTP/1.0 endpoint embedded
// in a running GUPT process.
//
// A hosted DP service must be observable *while queries are in flight*:
// Prometheus scrapes /metrics, an operator inspects /budgetz mid-incident,
// a load balancer polls /healthz. This server is deliberately tiny — one
// listener thread plus a small handler pool, std + POSIX sockets only, no
// third-party dependencies — because it sits in the lowest layer (obs) and
// must never constrain what the rest of the runtime can link against.
//
// Design constraints:
//   * Handlers are plain std::functions registered per path before Start();
//     upper layers (the service) close over their own state, so this layer
//     never learns about accountants, datasets, or admission queues.
//   * Loopback by default. The server carries operator-grade data (budget
//     ledgers, traces); exposing it beyond localhost is an explicit
//     operator decision (bind_address).
//   * Blocking I/O with short socket timeouts. Introspection traffic is a
//     handful of requests per second; an event loop would be complexity
//     without benefit, and a stuck client can only park one handler thread
//     for the timeout, not the listener.
//
// This header is obs-layer (below common/), so it cannot use
// common/status.h; errors are reported as strings.

#ifndef GUPT_OBS_INTROSPECT_HTTP_SERVER_H_
#define GUPT_OBS_INTROSPECT_HTTP_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace gupt {
namespace obs {
namespace introspect {

/// One parsed request. Only the request line is interpreted (method, path,
/// `?key=value&...` query parameters); headers are read and discarded.
struct HttpRequest {
  std::string method;        // e.g. "GET"
  std::string path;          // e.g. "/budgetz" (no query string)
  std::string query_string;  // e.g. "format=json" ("" when absent)
  std::map<std::string, std::string> query_params;

  /// Query parameter lookup with a default.
  std::string Param(const std::string& key, const std::string& fallback) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// Port to bind; 0 asks the kernel for an ephemeral port (read it back
  /// with port() after Start). Loopback-only by default.
  int port = 0;
  std::string bind_address = "127.0.0.1";
  /// Threads serving accepted connections. Introspection endpoints must
  /// stay responsive while one scrape is slow, so at least 2.
  std::size_t handler_threads = 2;
  /// Optional admission hook run after accept(): return false to drop the
  /// connection unanswered. The obs layer knows nothing about callers;
  /// upper layers use this to inject faults (GuptService wires the
  /// service.introspect.accept failpoint through it) or to rate-limit.
  std::function<bool()> on_accept;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options);

  /// Stops the server if still serving.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` (e.g. "/metrics"). Must be
  /// called before Start(). "/" serves a generated index of registered
  /// paths unless a handler claims it.
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds, listens, and spawns the listener + handler threads. Returns
  /// false (with a description in *error, if non-null) when the socket
  /// cannot be bound. Not restartable after Stop().
  bool Start(std::string* error = nullptr);

  /// Stops accepting, drains in-flight handlers, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (resolved even when options.port was 0); 0 before
  /// Start().
  int port() const { return port_; }

  bool serving() const;

 private:
  void ListenerLoop();
  void HandlerLoop();
  /// Reads, parses, dispatches, and answers one connection, then closes it.
  void ServeConnection(int fd);

  HttpServerOptions options_;
  std::map<std::string, HttpHandler> handlers_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread listener_;
  std::vector<std::thread> handler_pool_;

  mutable std::mutex mu_;
  std::condition_variable connection_ready_;
  std::deque<int> pending_connections_;
  bool serving_ = false;
  bool stopping_ = false;

  // Observability for the observability server itself. One counter per
  // registered path (label path=<path>), registered in Handle(), plus a
  // catch-all for 404s.
  std::map<std::string, Counter*> path_counters_;
  Counter* requests_unknown_;
  Histogram* request_duration_;
};

}  // namespace introspect
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_INTROSPECT_HTTP_SERVER_H_
