#include "obs/introspect/trace_ring.h"

#include <utility>

namespace gupt {
namespace obs {
namespace introspect {

void TraceRing::Push(CompletedTrace trace) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++total_pushed_;
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<CompletedTrace> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TraceRing::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pushed_;
}

}  // namespace introspect
}  // namespace obs
}  // namespace gupt
