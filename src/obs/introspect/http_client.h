// Minimal blocking HTTP/1.0 GET client for the introspection server.
//
// The curl-equivalent used by tests, the ctest scrape smoke test, and any
// embedded tooling that wants to read a sibling process's /metrics without
// shelling out. Same layering rule as the server: obs-only, so errors are
// strings, not Status.

#ifndef GUPT_OBS_INTROSPECT_HTTP_CLIENT_H_
#define GUPT_OBS_INTROSPECT_HTTP_CLIENT_H_

#include <string>

namespace gupt {
namespace obs {
namespace introspect {

struct HttpGetResult {
  /// False when the request could not be completed at the transport level
  /// (connect/send/recv failure or timeout); `error` then says why. A
  /// non-2xx HTTP status still has ok = true — the request *was* answered.
  bool ok = false;
  std::string error;
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Performs one `GET target` (e.g. "/metrics" or "/budgetz?format=json")
/// against host:port and reads until the server closes the connection.
HttpGetResult HttpGet(const std::string& host, int port,
                      const std::string& target, int timeout_ms = 5000);

}  // namespace introspect
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_INTROSPECT_HTTP_CLIENT_H_
