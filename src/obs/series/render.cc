#include "obs/series/render.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <vector>

namespace gupt {
namespace obs {
namespace series {

namespace {

/// 17 significant digits: enough for bit-exact double round-trips.
std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string TextDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::int64_t WindowMinTNs(const SeriesStore& store, double window_seconds) {
  if (window_seconds <= 0) return std::numeric_limits<std::int64_t>::min();
  // Anchored at the store's newest timestamp, not the wall clock, so a
  // paused collector still renders deterministically.
  const std::int64_t latest = store.LatestTimestampNs();
  return latest - static_cast<std::int64_t>(window_seconds * 1e9);
}

void AppendPointsJson(std::string* out,
                      const std::vector<SeriesPoint>& points) {
  *out += "\"samples\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) *out += ',';
    *out += "{\"t_ns\":";
    *out += std::to_string(points[i].t_ns);
    *out += ",\"unix_ms\":";
    *out += std::to_string(points[i].unix_ms);
    *out += ",\"value\":";
    *out += JsonDouble(points[i].value);
    *out += '}';
  }
  *out += ']';
}

}  // namespace

std::string TimeserieszText(const SeriesStore& store,
                            const std::string& name_filter,
                            double window_seconds, const RenderInfo& info) {
  const std::int64_t min_t_ns = WindowMinTNs(store, window_seconds);
  std::vector<SeriesSummary> summaries = store.Summaries(name_filter, min_t_ns);
  std::ostringstream out;
  out << "timeseriesz: " << store.NumSeries() << " series tracked, "
      << summaries.size() << " matched, capacity " << store.capacity()
      << " points/series, ";
  if (info.period_ms > 0) {
    out << "period " << info.period_ms << " ms";
  } else {
    out << "manual ticks";
  }
  out << ", ticks " << info.ticks << "\n";
  if (window_seconds > 0) {
    out << "window: last " << TextDouble(window_seconds) << " s\n";
  } else {
    out << "window: all retained\n";
  }
  out << "\n";
  for (const SeriesSummary& s : summaries) {
    out << s.name << "  points=" << s.points;
    if (s.points > 0) {
      out << "  latest=" << TextDouble(s.last.value)
          << "  min=" << TextDouble(s.min) << "  mean=" << TextDouble(s.mean)
          << "  max=" << TextDouble(s.max) << "  span="
          << TextDouble(static_cast<double>(s.last.t_ns - s.first.t_ns) * 1e-9)
          << "s";
    }
    out << "\n";
  }
  // A narrow filter gets the raw points ("Grafana-less" triage: pipe this
  // through gnuplot/awk).
  if (!name_filter.empty() && !summaries.empty() && summaries.size() <= 4) {
    for (const SeriesSummary& s : summaries) {
      if (s.points == 0) continue;
      out << "\n# " << s.name << " (unix_ms t_ns value)\n";
      for (const SeriesPoint& p : store.Points(s.name, min_t_ns)) {
        out << p.unix_ms << ' ' << p.t_ns << ' ' << TextDouble(p.value)
            << "\n";
      }
    }
  }
  return out.str();
}

std::string TimeserieszJson(const SeriesStore& store,
                            const std::string& name_filter,
                            double window_seconds, const RenderInfo& info) {
  const std::int64_t min_t_ns = WindowMinTNs(store, window_seconds);
  std::vector<SeriesSummary> summaries = store.Summaries(name_filter, min_t_ns);
  const bool with_samples = !name_filter.empty();
  std::string out = "{\"tracked\":";
  out += std::to_string(store.NumSeries());
  out += ",\"matched\":";
  out += std::to_string(summaries.size());
  out += ",\"capacity\":";
  out += std::to_string(store.capacity());
  out += ",\"period_ms\":";
  out += std::to_string(info.period_ms);
  out += ",\"ticks\":";
  out += std::to_string(info.ticks);
  out += ",\"window_seconds\":";
  out += window_seconds > 0 ? JsonDouble(window_seconds) : "null";
  out += ",\"series\":[";
  bool first = true;
  for (const SeriesSummary& s : summaries) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(s.name);
    out += "\",\"points\":";
    out += std::to_string(s.points);
    if (s.points > 0) {
      out += ",\"latest\":";
      out += JsonDouble(s.last.value);
      out += ",\"min\":";
      out += JsonDouble(s.min);
      out += ",\"mean\":";
      out += JsonDouble(s.mean);
      out += ",\"max\":";
      out += JsonDouble(s.max);
      out += ",\"first_unix_ms\":";
      out += std::to_string(s.first.unix_ms);
      out += ",\"last_unix_ms\":";
      out += std::to_string(s.last.unix_ms);
    }
    if (with_samples) {
      out += ',';
      AppendPointsJson(&out, store.Points(s.name, min_t_ns));
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string AlertzText(const AlertRuleEngine& engine) {
  std::vector<AlertInstanceStatus> instances = engine.Snapshot();
  std::size_t firing = 0;
  for (const AlertInstanceStatus& s : instances) {
    if (s.state == AlertState::kFiring) ++firing;
  }
  std::ostringstream out;
  out << "alertz: " << engine.NumRules() << " rules, " << instances.size()
      << " instances, " << firing << " firing, " << engine.Evaluations()
      << " evaluations\n\n";
  for (const AlertInstanceStatus& s : instances) {
    out << s.rule;
    if (!s.instance.empty()) out << "[" << s.instance << "]";
    out << "  severity=" << ToString(s.severity)
        << "  state=" << ToString(s.state);
    if (s.has_data) {
      out << "  value=" << TextDouble(s.value)
          << "  threshold=" << TextDouble(s.threshold);
    } else {
      out << "  value=<no data>";
    }
    out << "\n    " << s.detail << "\n    transitions=" << s.transitions
        << " fired=" << s.fire_count;
    if (s.pending_since_unix_ms > 0) {
      out << " pending_since=" << s.pending_since_unix_ms;
    }
    if (s.firing_since_unix_ms > 0) {
      out << " firing_since=" << s.firing_since_unix_ms;
    }
    if (s.resolved_unix_ms > 0) out << " resolved_at=" << s.resolved_unix_ms;
    if (s.transitions > 0) {
      out << " last_transition=" << s.last_transition_unix_ms << " qid="
          << s.last_transition_qid;
    }
    out << "\n";
  }
  return out.str();
}

std::string AlertzJson(const AlertRuleEngine& engine) {
  std::vector<AlertRule> rules = engine.Rules();
  std::vector<AlertInstanceStatus> instances = engine.Snapshot();
  std::string out = "{\"rules\":[";
  bool first = true;
  for (const AlertRule& r : rules) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(r.name);
    out += "\",\"severity\":\"";
    out += ToString(r.severity);
    out += "\",\"kind\":\"";
    out += r.burn_rate ? "burn_rate" : "threshold";
    out += "\"";
    if (!r.series.empty()) {
      out += ",\"series\":\"";
      out += JsonEscape(r.series);
      out += "\"";
    }
    if (!r.denominator.empty()) {
      out += ",\"denominator\":\"";
      out += JsonEscape(r.denominator);
      out += "\"";
    }
    if (!r.burn_rate) {
      out += ",\"agg\":\"";
      out += ToString(r.agg);
      out += "\",\"fire_below\":";
      out += r.fire_below ? "true" : "false";
    }
    if (!r.dataset.empty()) {
      out += ",\"dataset\":\"";
      out += JsonEscape(r.dataset);
      out += "\"";
    }
    out += ",\"threshold\":";
    out += JsonDouble(r.threshold);
    out += ",\"window_ms\":";
    out += std::to_string(r.window_ms);
    out += ",\"for_ms\":";
    out += std::to_string(r.for_ms);
    out += ",\"description\":\"";
    out += JsonEscape(r.description);
    out += "\"}";
  }
  out += "],\"instances\":[";
  first = true;
  for (const AlertInstanceStatus& s : instances) {
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":\"";
    out += JsonEscape(s.rule);
    out += "\",\"instance\":\"";
    out += JsonEscape(s.instance);
    out += "\",\"severity\":\"";
    out += ToString(s.severity);
    out += "\",\"state\":\"";
    out += ToString(s.state);
    out += "\",\"has_data\":";
    out += s.has_data ? "true" : "false";
    out += ",\"value\":";
    out += JsonDouble(s.value);
    out += ",\"threshold\":";
    out += JsonDouble(s.threshold);
    out += ",\"detail\":\"";
    out += JsonEscape(s.detail);
    out += "\",\"pending_since_unix_ms\":";
    out += std::to_string(s.pending_since_unix_ms);
    out += ",\"firing_since_unix_ms\":";
    out += std::to_string(s.firing_since_unix_ms);
    out += ",\"resolved_unix_ms\":";
    out += std::to_string(s.resolved_unix_ms);
    out += ",\"last_transition_unix_ms\":";
    out += std::to_string(s.last_transition_unix_ms);
    out += ",\"last_transition_qid\":";
    out += std::to_string(s.last_transition_qid);
    out += ",\"transitions\":";
    out += std::to_string(s.transitions);
    out += ",\"fire_count\":";
    out += std::to_string(s.fire_count);
    out += ",\"last_evaluated_unix_ms\":";
    out += std::to_string(s.last_evaluated_unix_ms);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace series
}  // namespace obs
}  // namespace gupt
