#include "obs/series/collector.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/trace.h"

namespace gupt {
namespace obs {
namespace series {

namespace {

std::int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Non-finite forecast values (no burn in window) publish as -1 so the
/// exported gauges stay finite.
double FiniteOr(double value, double fallback) {
  return std::isfinite(value) ? value : fallback;
}

}  // namespace

std::string SeriesName(const std::string& metric, const Labels& labels,
                       const char* agg) {
  std::string out = metric;
  if (!labels.empty()) {
    // Registry samples arrive pre-sorted; sort here too so ad-hoc
    // callers produce the same canonical name for the same label set.
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    out += '{';
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) out += ',';
      out += sorted[i].first;
      out += '=';
      out += sorted[i].second;
    }
    out += '}';
  }
  out += ':';
  out += agg;
  return out;
}

SeriesCollector::SeriesCollector(SeriesCollectorOptions options,
                                 SeriesStore* store, AlertRuleEngine* engine)
    : options_(std::move(options)),
      store_(store),
      engine_(engine),
      forecaster_(options_.forecast_window_ms * 1000000) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Get();
  }
  MetricsRegistry& registry = *options_.registry;
  tracked_gauge_ = registry.GetGauge(
      "gupt_series_tracked_count",
      "Distinct time series currently retained by the collector.");
  points_counter_ = registry.GetCounter(
      "gupt_series_points_total",
      "Samples accepted into the time-series store.");
  dropped_counter_ = registry.GetCounter(
      "gupt_series_points_dropped_total",
      "Samples dropped for non-monotone timestamps.");
  const char* collections_help = "Collector ticks by outcome.";
  collections_ok_ = registry.GetCounter("gupt_series_collections_total",
                                        collections_help, {{"outcome", "ok"}});
  collections_skipped_ =
      registry.GetCounter("gupt_series_collections_total", collections_help,
                          {{"outcome", "skipped"}});
  evaluations_skipped_ = registry.GetCounter(
      "gupt_alert_evaluations_skipped_total",
      "Alert evaluation passes skipped by the evaluate gate.");
  collect_duration_ = registry.GetHistogram(
      "gupt_series_collect_duration_seconds",
      "Wall time of one collector sampling pass.",
      Histogram::DurationBuckets());
}

SeriesCollector::~SeriesCollector() { Stop(); }

void SeriesCollector::Start() {
  if (options_.period_ms <= 0) return;
  std::lock_guard<std::mutex> lock(run_mu_);
  if (thread_running_) return;
  stop_requested_ = false;
  thread_running_ = true;
  thread_ = std::thread([this] { Run(); });
}

void SeriesCollector::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!thread_running_) return;
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(run_mu_);
  thread_running_ = false;
}

bool SeriesCollector::running() const {
  std::lock_guard<std::mutex> lock(run_mu_);
  return thread_running_;
}

void SeriesCollector::Run() {
  std::unique_lock<std::mutex> lock(run_mu_);
  while (!stop_requested_) {
    run_cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                     [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void SeriesCollector::TickNow() { Tick(); }

void SeriesCollector::Tick() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  ++ticks_;
  std::int64_t t_ns = NanosSinceTraceEpoch(std::chrono::steady_clock::now());
  // One shared timestamp per tick, strictly monotone even if two ticks
  // land within clock resolution.
  if (t_ns <= last_tick_t_ns_) t_ns = last_tick_t_ns_ + 1;
  last_tick_t_ns_ = t_ns;
  const std::int64_t unix_ms = NowUnixMs();

  const bool collect = !options_.on_collect || options_.on_collect();
  if (collect) {
    const auto started = std::chrono::steady_clock::now();
    const std::uint64_t appended_before = store_->AppendedPoints();
    const std::uint64_t dropped_before = store_->DroppedPoints();

    std::vector<BudgetStat> stats;
    if (options_.budget_source) {
      stats = options_.budget_source();
      for (const BudgetStat& stat : stats) {
        BudgetGauges& gauges = budget_gauges_[stat.dataset];
        if (gauges.total == nullptr) {
          MetricsRegistry& registry = *options_.registry;
          const Labels labels = {{"dataset", stat.dataset}};
          gauges.total = registry.GetGauge(
              "gupt_budget_total_epsilon",
              "Dataset's total privacy budget.", labels);
          gauges.spent = registry.GetGauge(
              "gupt_budget_spent_epsilon",
              "Epsilon irrevocably charged so far.", labels);
          gauges.remaining = registry.GetGauge(
              "gupt_budget_remaining_epsilon",
              "Epsilon still available (clamped at zero).", labels);
          gauges.charges = registry.GetGauge(
              "gupt_budget_charges_count",
              "Accepted ledger charges so far.", labels);
          gauges.burn_rate = registry.GetGauge(
              "gupt_budget_burn_rate_epsilon",
              "Instantaneous epsilon burn rate (eps per second, "
              "backward difference over the last collector interval).",
              labels);
          gauges.exhaustion_seconds = registry.GetGauge(
              "gupt_budget_burn_exhaustion_seconds",
              "Forecasted seconds until budget exhaustion at the "
              "window-average burn rate; -1 when not burning.",
              labels);
          gauges.exhaustion_queries = registry.GetGauge(
              "gupt_budget_burn_queries_count",
              "Forecasted queries until budget exhaustion at the "
              "window-average per-query cost; -1 when unknown.",
              labels);
        }
        const double remaining =
            stat.total_epsilon > stat.spent_epsilon
                ? stat.total_epsilon - stat.spent_epsilon
                : 0.0;
        gauges.total->Set(stat.total_epsilon);
        gauges.spent->Set(stat.spent_epsilon);
        gauges.remaining->Set(remaining);
        gauges.charges->Set(static_cast<double>(stat.num_charges));
      }
    }

    for (const MetricSample& sample : options_.registry->CollectSamples()) {
      bool derived = false;
      for (const std::string& prefix : options_.derived_prefixes) {
        if (sample.name.compare(0, prefix.size(), prefix) == 0) {
          derived = true;
          break;
        }
      }
      if (derived) continue;
      SeriesPoint point;
      point.t_ns = t_ns;
      point.unix_ms = unix_ms;
      switch (sample.kind) {
        case MetricSample::Kind::kCounter: {
          const std::string base = SeriesName(sample.name, sample.labels, "rate");
          CounterPrev& prev = counter_prev_[base];
          // Primed on first sight; a rate needs two observations. A value
          // below the previous one means the registry was reset — re-prime.
          if (prev.t_ns > 0 && t_ns > prev.t_ns && sample.value >= prev.value) {
            point.value = (sample.value - prev.value) /
                          (static_cast<double>(t_ns - prev.t_ns) * 1e-9);
            store_->Append(base, point);
          }
          prev.value = sample.value;
          prev.t_ns = t_ns;
          break;
        }
        case MetricSample::Kind::kGauge:
          point.value = sample.value;
          store_->Append(SeriesName(sample.name, sample.labels, "value"),
                         point);
          break;
        case MetricSample::Kind::kHistogram:
          if (sample.count == 0) break;  // no all-zero quantile noise
          point.value = sample.p50;
          store_->Append(SeriesName(sample.name, sample.labels, "p50"), point);
          point.value = sample.p95;
          store_->Append(SeriesName(sample.name, sample.labels, "p95"), point);
          point.value = sample.p99;
          store_->Append(SeriesName(sample.name, sample.labels, "p99"), point);
          break;
      }
    }

    latest_forecasts_ = forecaster_.Tick(stats, store_, t_ns, unix_ms);
    for (const BudgetForecast& f : latest_forecasts_) {
      auto it = budget_gauges_.find(f.dataset);
      if (it == budget_gauges_.end()) continue;
      it->second.burn_rate->Set(f.instant_rate_eps_per_s);
      it->second.exhaustion_seconds->Set(
          f.burning ? FiniteOr(f.seconds_to_exhaustion, -1.0) : -1.0);
      it->second.exhaustion_queries->Set(
          f.burning ? FiniteOr(f.queries_to_exhaustion, -1.0) : -1.0);
    }

    collections_ok_->Increment();
    points_counter_->Increment(
        static_cast<double>(store_->AppendedPoints() - appended_before));
    dropped_counter_->Increment(
        static_cast<double>(store_->DroppedPoints() - dropped_before));
    tracked_gauge_->Set(static_cast<double>(store_->NumSeries()));
    collect_duration_->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  } else {
    collections_skipped_->Increment();
  }

  if (engine_ != nullptr) {
    const bool evaluate = !options_.on_evaluate || options_.on_evaluate();
    if (evaluate) {
      engine_->Evaluate(*store_, latest_forecasts_, t_ns, unix_ms,
                        options_.qid_source ? options_.qid_source() : 0);
    } else {
      evaluations_skipped_->Increment();
    }
  }
}

std::vector<BudgetForecast> SeriesCollector::LatestForecasts() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return latest_forecasts_;
}

std::uint64_t SeriesCollector::Ticks() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return ticks_;
}

}  // namespace series
}  // namespace obs
}  // namespace gupt
