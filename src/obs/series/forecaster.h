// Per-dataset epsilon burn-rate forecasting.
//
// GUPT's budget charges are irrevocable (paper §6.2): once a dataset's
// ledger hits its cap, the outage cannot be rolled back. The forecaster
// turns ledger snapshots into the two numbers an operator needs *before*
// that happens — how fast epsilon is burning, and how long until
// exhaustion — in both wall-time and query-count terms.
//
// Exactness contract (pinned by tests): the per-tick burn-rate sample is
// the backward-difference interval average
//
//     r_i = (spent_i - spent_{i-1}) / ((t_ns_i - t_ns_{i-1}) * 1e-9)
//
// so integrating the series trapezoid-style over its own timestamps
// (sum of r_i * dt_i with dt_i recomputed the same way) telescopes to
// spent_N - spent_0 up to one rounding per term — well inside 1e-9 for
// any realistic window. The first sample of a dataset is 0 (no previous
// tick) and contributes nothing to the integral.
//
// Layering: obs bottom layer, std only. BudgetStat mirrors the dp
// accountant's totals without depending on dp/.

#ifndef GUPT_OBS_SERIES_FORECASTER_H_
#define GUPT_OBS_SERIES_FORECASTER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/series/time_series.h"

namespace gupt {
namespace obs {
namespace series {

/// One dataset's ledger totals at a sampling instant (mirrors the dp
/// accountant snapshot minus the charge history — the collector ticks
/// once a second and must not copy an unbounded ledger each time).
struct BudgetStat {
  std::string dataset;
  double total_epsilon = 0.0;
  double spent_epsilon = 0.0;
  std::uint64_t num_charges = 0;
};

/// Forecast for one dataset, recomputed every collector tick.
struct BudgetForecast {
  std::string dataset;
  double total_epsilon = 0.0;
  double spent_epsilon = 0.0;
  double remaining_epsilon = 0.0;

  /// Backward-difference rate over the last tick interval (the value
  /// appended to the gupt_budget_burn_rate_epsilon series).
  double instant_rate_eps_per_s = 0.0;
  /// Window-average rate: (spent_last - spent_first) / window span.
  double window_rate_eps_per_s = 0.0;
  /// Window-average cost per accepted charge; 0 when no charge landed in
  /// the window.
  double eps_per_query = 0.0;

  /// remaining / window_rate; +inf when nothing burned in the window.
  double seconds_to_exhaustion = std::numeric_limits<double>::infinity();
  /// remaining / eps_per_query; +inf when no charge landed in the window.
  double queries_to_exhaustion = std::numeric_limits<double>::infinity();

  /// True when spent_epsilon increased within the window.
  bool burning = false;
  /// Actual span of the window used, ns (may be shorter than configured
  /// while the series warms up).
  std::int64_t window_span_ns = 0;
};

/// Derived-series names the forecaster appends (the collector skips these
/// prefixes when sampling the registry, so they are never double-written).
extern const char kBurnRateSeriesPrefix[];  // "gupt_budget_burn_"

/// Computes forecasts and appends the derived burn series. Not thread
/// safe; owned and driven by the SeriesCollector, one Tick per collect.
class BudgetForecaster {
 public:
  explicit BudgetForecaster(std::int64_t window_ns);

  /// One sampling instant: appends per-dataset spent/remaining/burn
  /// series to `store` at (t_ns, unix_ms) and returns the new forecasts.
  std::vector<BudgetForecast> Tick(const std::vector<BudgetStat>& stats,
                                   SeriesStore* store, std::int64_t t_ns,
                                   std::int64_t unix_ms);

  std::int64_t window_ns() const { return window_ns_; }

 private:
  struct PrevSample {
    std::int64_t t_ns = 0;
    double spent_epsilon = 0.0;
    bool valid = false;
  };

  const std::int64_t window_ns_;
  std::map<std::string, PrevSample> prev_;  // per dataset
};

}  // namespace series
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_SERIES_FORECASTER_H_
