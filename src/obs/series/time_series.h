// Fixed-capacity in-process time series for the GUPT runtime.
//
// Every introspection surface before this one (/metrics, /varz, /budgetz)
// is a point-in-time snapshot; answering "how fast is dataset X burning
// epsilon?" needs history. A TimeSeries is a ring buffer of timestamped
// samples — bounded memory, oldest points rotate out — and a SeriesStore
// is a named registry of them, populated once per collector tick and read
// by /timeseriesz and the alert engine.
//
// Two clocks per point, deliberately:
//   * t_ns   — steady-clock nanoseconds since obs::TraceEpoch(). The
//              canonical axis: strictly monotone, immune to wall-clock
//              steps, and the base for every rate/window computation (a
//              burn-rate integral must telescope exactly; see
//              forecaster.h).
//   * unix_ms — wall-clock milliseconds, for human display only.
//
// Append enforces strictly increasing t_ns per series and *drops* (never
// reorders) violating points, so a delayed collector tick can stall the
// series but can never skew its ordering.
//
// Layering: obs is the bottom layer — std only, no common/, no testing/.

#ifndef GUPT_OBS_SERIES_TIME_SERIES_H_
#define GUPT_OBS_SERIES_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gupt {
namespace obs {
namespace series {

/// One sample. See the header comment for the two-clock scheme.
struct SeriesPoint {
  std::int64_t t_ns = 0;
  std::int64_t unix_ms = 0;
  double value = 0.0;
};

/// Ring buffer of SeriesPoints with strictly increasing t_ns. Not
/// internally synchronised — SeriesStore guards access with its mutex.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity);

  /// Appends when point.t_ns is strictly greater than the newest retained
  /// timestamp; returns false (and keeps the series untouched) otherwise.
  /// At capacity the oldest point rotates out.
  bool Append(const SeriesPoint& point);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return points_.size(); }
  bool empty() const { return size_ == 0; }

  /// Newest point; zero-initialised when empty.
  SeriesPoint Latest() const;

  /// Points with t_ns >= min_t_ns, oldest first. Pass
  /// std::numeric_limits<std::int64_t>::min() for everything retained.
  std::vector<SeriesPoint> Window(std::int64_t min_t_ns) const;

 private:
  const SeriesPoint& At(std::size_t logical) const {
    return points_[(head_ + logical) % points_.size()];
  }

  std::vector<SeriesPoint> points_;  // ring storage, length == capacity
  std::size_t head_ = 0;             // index of the oldest point
  std::size_t size_ = 0;
};

/// Per-series summary over a window, as rendered by /timeseriesz.
struct SeriesSummary {
  std::string name;
  std::size_t points = 0;
  SeriesPoint first;
  SeriesPoint last;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Thread-safe registry of named TimeSeries sharing one capacity. Series
/// are created on first Append and never removed (the name set is bounded
/// by the metric families the process registers).
class SeriesStore {
 public:
  explicit SeriesStore(std::size_t capacity);

  /// Appends to `name`, creating the series on first use. Returns false
  /// when the point was dropped for non-monotone t_ns.
  bool Append(const std::string& name, const SeriesPoint& point);

  /// Sorted names of all series.
  std::vector<std::string> Names() const;

  std::size_t NumSeries() const;
  std::size_t capacity() const { return capacity_; }

  /// Points ever accepted / dropped across all series.
  std::uint64_t AppendedPoints() const;
  std::uint64_t DroppedPoints() const;

  bool Has(const std::string& name) const;

  /// Points of `name` with t_ns >= min_t_ns, oldest first; empty when the
  /// series does not exist.
  std::vector<SeriesPoint> Points(
      const std::string& name,
      std::int64_t min_t_ns = std::numeric_limits<std::int64_t>::min()) const;

  /// Newest point of `name`; *ok (if non-null) reports existence.
  SeriesPoint Latest(const std::string& name, bool* ok = nullptr) const;

  /// Newest t_ns across every series (0 when the store is empty) — the
  /// store's "now", used to anchor ?window= queries deterministically.
  std::int64_t LatestTimestampNs() const;

  /// Summaries over [min_t_ns, ...] for every series whose name contains
  /// `name_filter` (empty filter matches all), sorted by name. Series with
  /// no points in the window report points == 0.
  std::vector<SeriesSummary> Summaries(
      const std::string& name_filter,
      std::int64_t min_t_ns = std::numeric_limits<std::int64_t>::min()) const;

 private:
  mutable std::mutex mu_;
  const std::size_t capacity_;
  std::map<std::string, TimeSeries> series_;  // sorted => deterministic render
  std::uint64_t appended_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace series
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_SERIES_TIME_SERIES_H_
