// Text and JSON bodies for /timeseriesz and /alertz.
//
// Free functions so the service layer's endpoint handlers stay thin and
// the formats are unit-testable without sockets. JSON doubles print with
// 17 significant digits (round-trip exact — the burn-rate integration
// test reconstructs ledger deltas from these bodies to 1e-9).

#ifndef GUPT_OBS_SERIES_RENDER_H_
#define GUPT_OBS_SERIES_RENDER_H_

#include <cstdint>
#include <string>

#include "obs/series/alerts.h"
#include "obs/series/collector.h"
#include "obs/series/time_series.h"

namespace gupt {
namespace obs {
namespace series {

/// Collector configuration echoed into the rendered bodies.
struct RenderInfo {
  std::int64_t period_ms = 0;   // 0 = manual ticks only
  std::size_t capacity = 0;     // ring points per series
  std::uint64_t ticks = 0;
};

/// `name_filter`: substring match over series names ("" = all).
/// `window_seconds`: <= 0 renders everything retained; otherwise points
/// newer than (newest timestamp in the store) - window. The text body
/// lists per-series summaries, plus full point dumps when the filter
/// matches at most 4 series; the JSON body includes full samples exactly
/// when a non-empty filter is given.
std::string TimeserieszText(const SeriesStore& store,
                            const std::string& name_filter,
                            double window_seconds, const RenderInfo& info);
std::string TimeserieszJson(const SeriesStore& store,
                            const std::string& name_filter,
                            double window_seconds, const RenderInfo& info);

std::string AlertzText(const AlertRuleEngine& engine);
std::string AlertzJson(const AlertRuleEngine& engine);

}  // namespace series
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_SERIES_RENDER_H_
