#include "obs/series/time_series.h"

#include <algorithm>

namespace gupt {
namespace obs {
namespace series {

TimeSeries::TimeSeries(std::size_t capacity)
    : points_(capacity > 0 ? capacity : 1) {}

bool TimeSeries::Append(const SeriesPoint& point) {
  if (size_ > 0 && point.t_ns <= At(size_ - 1).t_ns) return false;
  if (size_ == points_.size()) {
    points_[head_] = point;
    head_ = (head_ + 1) % points_.size();
  } else {
    points_[(head_ + size_) % points_.size()] = point;
    ++size_;
  }
  return true;
}

SeriesPoint TimeSeries::Latest() const {
  if (size_ == 0) return SeriesPoint{};
  return At(size_ - 1);
}

std::vector<SeriesPoint> TimeSeries::Window(std::int64_t min_t_ns) const {
  std::vector<SeriesPoint> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const SeriesPoint& p = At(i);
    if (p.t_ns >= min_t_ns) out.push_back(p);
  }
  return out;
}

SeriesStore::SeriesStore(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

bool SeriesStore::Append(const std::string& name, const SeriesPoint& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(capacity_)).first;
  }
  const bool accepted = it->second.Append(point);
  if (accepted) {
    ++appended_;
  } else {
    ++dropped_;
  }
  return accepted;
}

std::vector<std::string> SeriesStore::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, unused] : series_) out.push_back(name);
  return out;
}

std::size_t SeriesStore::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::uint64_t SeriesStore::AppendedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::uint64_t SeriesStore::DroppedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool SeriesStore::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.count(name) > 0;
}

std::vector<SeriesPoint> SeriesStore::Points(const std::string& name,
                                             std::int64_t min_t_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  return it->second.Window(min_t_ns);
}

SeriesPoint SeriesStore::Latest(const std::string& name, bool* ok) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (ok != nullptr) *ok = it != series_.end() && !it->second.empty();
  if (it == series_.end()) return SeriesPoint{};
  return it->second.Latest();
}

std::int64_t SeriesStore::LatestTimestampNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t latest = 0;
  for (const auto& [name, ts] : series_) {
    if (!ts.empty()) latest = std::max(latest, ts.Latest().t_ns);
  }
  return latest;
}

std::vector<SeriesSummary> SeriesStore::Summaries(
    const std::string& name_filter, std::int64_t min_t_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesSummary> out;
  for (const auto& [name, ts] : series_) {
    if (!name_filter.empty() && name.find(name_filter) == std::string::npos) {
      continue;
    }
    SeriesSummary summary;
    summary.name = name;
    std::vector<SeriesPoint> points = ts.Window(min_t_ns);
    summary.points = points.size();
    if (!points.empty()) {
      summary.first = points.front();
      summary.last = points.back();
      summary.min = points.front().value;
      summary.max = points.front().value;
      double sum = 0.0;
      for (const SeriesPoint& p : points) {
        summary.min = std::min(summary.min, p.value);
        summary.max = std::max(summary.max, p.value);
        sum += p.value;
      }
      summary.mean = sum / static_cast<double>(points.size());
    }
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace series
}  // namespace obs
}  // namespace gupt
