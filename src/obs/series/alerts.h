// Declarative alert rules over collected time series.
//
// A rule watches either (a) one series — aggregated over a sliding
// window, optionally divided by a denominator series for ratio rules —
// against a threshold, or (b) the budget forecaster's time-to-exhaustion
// per dataset ("burn-rate rule"). Each rule instance walks the classic
// pending -> firing -> resolved state machine with for-duration
// hysteresis: the condition must hold for `for_ms` before a pending
// instance fires, a single good evaluation resolves it, and `resolved`
// is sticky until the condition next returns (so an operator can see
// that an alert fired even after it cleared).
//
// Built-in rules cover the failure modes this service has already grown
// detectors for: budget exhaustion (the one unrollbackable outage),
// admission-queue saturation, chamber-pool respawn storms, and SVT
// session-capacity pressure. BuiltinAlertRules() assembles them from the
// service's configured capacities; tools/check_metrics_names.py verifies
// every series literal in this subsystem names a registered metric.
//
// Layering: obs bottom layer, std only.

#ifndef GUPT_OBS_SERIES_ALERTS_H_
#define GUPT_OBS_SERIES_ALERTS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/series/forecaster.h"
#include "obs/series/time_series.h"

namespace gupt {
namespace obs {
namespace series {

enum class AlertSeverity { kInfo, kWarning, kCritical };
enum class AlertState { kInactive, kPending, kFiring, kResolved };

/// Window aggregation for threshold rules.
enum class AlertAgg { kLatest, kMean, kMax, kMin, kDelta };

const char* ToString(AlertSeverity severity);
const char* ToString(AlertState state);
const char* ToString(AlertAgg agg);

struct AlertRule {
  std::string name;  // snake_case identifier, unique per engine
  std::string description;
  AlertSeverity severity = AlertSeverity::kWarning;

  /// Threshold rule (burn_rate == false): aggregate `series` over
  /// `window_ms`; when `denominator` is non-empty the value is the ratio
  /// of the two aggregates (denominator 0 -> +inf if the numerator is
  /// positive, else 0). Fires when value >= threshold (<= with
  /// fire_below).
  std::string series;
  std::string denominator;
  AlertAgg agg = AlertAgg::kLatest;
  bool fire_below = false;
  double threshold = 0.0;

  /// Burn-rate rule: ignores series/agg and fires per dataset when the
  /// forecast is burning and seconds_to_exhaustion <= threshold (the
  /// horizon, in seconds). `dataset` restricts to one dataset; empty
  /// watches all.
  bool burn_rate = false;
  std::string dataset;

  std::int64_t window_ms = 60000;
  std::int64_t for_ms = 0;
};

/// Published state of one rule instance (a burn-rate rule has one
/// instance per dataset; threshold rules one with an empty instance).
struct AlertInstanceStatus {
  std::string rule;
  std::string instance;
  std::string description;
  AlertSeverity severity = AlertSeverity::kWarning;
  AlertState state = AlertState::kInactive;
  double value = 0.0;      // last evaluated value (or seconds-to-exhaustion)
  double threshold = 0.0;
  bool has_data = false;   // false while the watched series is empty
  std::string detail;      // human-readable condition summary

  std::int64_t pending_since_unix_ms = 0;   // 0 = never pending
  std::int64_t firing_since_unix_ms = 0;    // 0 = not firing
  std::int64_t resolved_unix_ms = 0;        // 0 = never resolved
  std::int64_t last_transition_unix_ms = 0;
  /// Newest query id the service had issued at the last transition —
  /// joins an alert flip to /tracez, /slowz and the audit log.
  std::uint64_t last_transition_qid = 0;
  std::uint64_t transitions = 0;
  std::uint64_t fire_count = 0;  // times this instance entered firing
  std::int64_t last_evaluated_unix_ms = 0;
};

class AlertRuleEngine {
 public:
  /// `registry` (usually MetricsRegistry::Get()) receives the
  /// gupt_alert_* instrumentation; pass nullptr to skip it in unit tests.
  explicit AlertRuleEngine(MetricsRegistry* registry = nullptr);

  void AddRule(AlertRule rule);
  std::size_t NumRules() const;
  std::vector<AlertRule> Rules() const;

  /// One evaluation pass at (t_ns, unix_ms). `qid` is the newest query id
  /// issued so far, recorded on every state transition.
  void Evaluate(const SeriesStore& store,
                const std::vector<BudgetForecast>& forecasts,
                std::int64_t t_ns, std::int64_t unix_ms, std::uint64_t qid);

  std::vector<AlertInstanceStatus> Snapshot() const;

  std::uint64_t Evaluations() const;

  /// Names ("rule" or "rule[instance]") of firing instances at or above
  /// `min_severity`, sorted.
  std::vector<std::string> FiringNames(
      AlertSeverity min_severity = AlertSeverity::kInfo) const;

 private:
  struct Instance {
    AlertInstanceStatus status;
    std::int64_t pending_since_ns = 0;  // steady time the condition began
  };

  void Transition(Instance* instance, AlertState next, std::int64_t unix_ms,
                  std::uint64_t qid);

  /// Threshold-rule value over the window ending at t_ns. Returns false
  /// when the watched series has no points in the window.
  bool ThresholdValue(const AlertRule& rule, const SeriesStore& store,
                      std::int64_t t_ns, double* value,
                      std::string* detail) const;

  mutable std::mutex mu_;
  std::vector<AlertRule> rules_;
  // Keyed "rule\x1f<instance>"; std::map keeps snapshots sorted.
  std::map<std::string, Instance> instances_;

  Gauge* rules_gauge_ = nullptr;
  Counter* evaluations_counter_ = nullptr;
  Counter* transitions_pending_ = nullptr;
  Counter* transitions_firing_ = nullptr;
  Counter* transitions_resolved_ = nullptr;
  Counter* transitions_inactive_ = nullptr;
  Gauge* firing_info_ = nullptr;
  Gauge* firing_warning_ = nullptr;
  Gauge* firing_critical_ = nullptr;
  std::uint64_t evaluations_ = 0;
};

/// Capacities the built-in rules are parameterised by (0 skips the
/// corresponding rule where a threshold would be meaningless).
struct BuiltinRuleOptions {
  /// budget_exhaustion_imminent fires when forecasted time-to-exhaustion
  /// drops to or below this many seconds.
  double budget_horizon_seconds = 600.0;
  /// Collector cadence; used as the for-duration so a rule is pending for
  /// at least one tick before firing (observable hysteresis).
  std::int64_t collector_period_ms = 1000;
  std::int64_t window_ms = 60000;
  std::size_t admission_queue_capacity = 0;
  std::size_t svt_session_capacity = 0;
  bool chamber_pool_enabled = false;
};

/// The built-in rule set. Series names here are validated against the
/// registered metric families by tools/check_metrics_names.py.
std::vector<AlertRule> BuiltinAlertRules(const BuiltinRuleOptions& options);

}  // namespace series
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_SERIES_ALERTS_H_
