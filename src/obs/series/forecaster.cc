#include "obs/series/forecaster.h"

namespace gupt {
namespace obs {
namespace series {

const char kBurnRateSeriesPrefix[] = "gupt_budget_burn_";

namespace {

std::string DatasetSeries(const char* metric, const std::string& dataset) {
  std::string out = metric;
  out += "{dataset=";
  out += dataset;
  out += "}:value";
  return out;
}

}  // namespace

BudgetForecaster::BudgetForecaster(std::int64_t window_ns)
    : window_ns_(window_ns > 0 ? window_ns : 1) {}

std::vector<BudgetForecast> BudgetForecaster::Tick(
    const std::vector<BudgetStat>& stats, SeriesStore* store,
    std::int64_t t_ns, std::int64_t unix_ms) {
  std::vector<BudgetForecast> out;
  out.reserve(stats.size());
  for (const BudgetStat& stat : stats) {
    BudgetForecast f;
    f.dataset = stat.dataset;
    f.total_epsilon = stat.total_epsilon;
    f.spent_epsilon = stat.spent_epsilon;
    f.remaining_epsilon = stat.total_epsilon - stat.spent_epsilon;
    if (f.remaining_epsilon < 0.0) f.remaining_epsilon = 0.0;

    // Instant (last-interval) backward difference. The division below and
    // the test-side integration recompute dt identically from the series
    // timestamps, so the integral telescopes exactly; see the header.
    PrevSample& prev = prev_[stat.dataset];
    if (prev.valid && t_ns > prev.t_ns) {
      const double dt_s = static_cast<double>(t_ns - prev.t_ns) * 1e-9;
      const double delta = stat.spent_epsilon - prev.spent_epsilon;
      if (delta > 0.0) f.instant_rate_eps_per_s = delta / dt_s;
    }

    // Window-average rate and per-query cost from the sampled spent /
    // charges series (written earlier this tick by the collector's
    // registry pass, so the window includes the current instant).
    const std::string spent_name =
        DatasetSeries("gupt_budget_spent_epsilon", stat.dataset);
    const std::string charges_name =
        DatasetSeries("gupt_budget_charges_count", stat.dataset);
    std::vector<SeriesPoint> spent =
        store->Points(spent_name, t_ns - window_ns_);
    if (spent.size() >= 2) {
      const SeriesPoint& first = spent.front();
      const SeriesPoint& last = spent.back();
      f.window_span_ns = last.t_ns - first.t_ns;
      const double span_s = static_cast<double>(f.window_span_ns) * 1e-9;
      const double delta = last.value - first.value;
      if (span_s > 0.0 && delta > 0.0) {
        f.window_rate_eps_per_s = delta / span_s;
        f.burning = true;
        std::vector<SeriesPoint> charges =
            store->Points(charges_name, t_ns - window_ns_);
        if (charges.size() >= 2) {
          const double charge_delta = charges.back().value - charges.front().value;
          if (charge_delta > 0.0) f.eps_per_query = delta / charge_delta;
        }
        if (f.remaining_epsilon <= 0.0) {
          f.seconds_to_exhaustion = 0.0;
          f.queries_to_exhaustion = 0.0;
        } else {
          f.seconds_to_exhaustion = f.remaining_epsilon / f.window_rate_eps_per_s;
          if (f.eps_per_query > 0.0) {
            f.queries_to_exhaustion = f.remaining_epsilon / f.eps_per_query;
          }
        }
      }
    } else if (prev.valid && f.instant_rate_eps_per_s > 0.0) {
      // Warm-up fallback: one interval of history, no sampled window yet.
      f.window_rate_eps_per_s = f.instant_rate_eps_per_s;
      f.window_span_ns = t_ns - prev.t_ns;
      f.burning = true;
      f.seconds_to_exhaustion =
          f.remaining_epsilon > 0.0
              ? f.remaining_epsilon / f.window_rate_eps_per_s
              : 0.0;
    }
    if (f.remaining_epsilon <= 0.0 && stat.spent_epsilon > 0.0) {
      // Already exhausted: time-to-exhaustion is zero regardless of rate.
      f.seconds_to_exhaustion = 0.0;
      f.queries_to_exhaustion = 0.0;
    }

    SeriesPoint burn;
    burn.t_ns = t_ns;
    burn.unix_ms = unix_ms;
    burn.value = f.instant_rate_eps_per_s;
    store->Append(DatasetSeries("gupt_budget_burn_rate_epsilon", stat.dataset),
                  burn);

    prev.t_ns = t_ns;
    prev.spent_epsilon = stat.spent_epsilon;
    prev.valid = true;
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace series
}  // namespace obs
}  // namespace gupt
