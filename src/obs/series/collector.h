// Background sampler: MetricsRegistry + budget ledgers -> SeriesStore.
//
// One tick, in order:
//   1. on_collect gate (the service wires service.series.collect here; a
//      fired failpoint skips the sampling half of the tick — history
//      stalls, nothing else happens).
//   2. Budget gauges: budget_source() ledger totals are published as
//      gupt_budget_{total,spent,remaining}_epsilon / charges_count gauges
//      (labelled by dataset) so the next step samples them like any
//      other metric.
//   3. Registry sweep: every instrument becomes one or more series —
//      counters a backward-difference `:rate` (primed on first sight,
//      so rates appear from the second tick), gauges a `:value`, and
//      histograms `:p50`/`:p95`/`:p99` interpolated from buckets. All
//      points of a tick share one (t_ns, unix_ms) pair; t_ns is bumped
//      to stay strictly monotone.
//   4. BudgetForecaster::Tick — burn rates, time/queries-to-exhaustion,
//      derived gupt_budget_burn_* series (skipped by the sweep above via
//      the derived prefix, so they are never double-written).
//   5. on_evaluate gate, then AlertRuleEngine::Evaluate over the fresh
//      window.
//
// Series naming: `<metric>{k=v,...}:<agg>` with labels in canonical
// order and the label block omitted when empty, e.g.
//   gupt_service_admission_queue_depth:value
//   gupt_runtime_queries_total{outcome=ok}:rate
//   gupt_runtime_stage_duration_seconds{stage=partition}:p99
//
// The collector only ever *reads* the ledgers (budget_source returns
// totals by value); no code path here can touch charged epsilon — the
// fault suite pins /budgetz byte-equality with the collector on, off,
// and crashing.
//
// Layering: obs bottom layer, std only. Failpoints and the accountant
// arrive as injected std::function hooks from the service layer.

#ifndef GUPT_OBS_SERIES_COLLECTOR_H_
#define GUPT_OBS_SERIES_COLLECTOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/series/alerts.h"
#include "obs/series/forecaster.h"
#include "obs/series/time_series.h"

namespace gupt {
namespace obs {
namespace series {

struct SeriesCollectorOptions {
  /// Sampling cadence for the background thread started by Start().
  /// <= 0 means no thread: ticks happen only via TickNow() (tests drive
  /// the collector deterministically this way).
  std::int64_t period_ms = 1000;
  /// Sliding window for burn-rate forecasts.
  std::int64_t forecast_window_ms = 60000;
  /// Registry to sample AND to publish gupt_series_* instrumentation
  /// into; defaults to MetricsRegistry::Get().
  MetricsRegistry* registry = nullptr;
  /// Per-dataset ledger totals; empty function disables budget series +
  /// forecasts.
  std::function<std::vector<BudgetStat>()> budget_source;
  /// Newest query id issued so far (stamped on alert transitions).
  std::function<std::uint64_t()> qid_source;
  /// Gates, wired to failpoints by the service layer. Returning false
  /// skips that half of the tick. Never invoked concurrently.
  std::function<bool()> on_collect;
  std::function<bool()> on_evaluate;
  /// Series name prefixes the registry sweep skips because a later tick
  /// stage derives them itself.
  std::vector<std::string> derived_prefixes = {kBurnRateSeriesPrefix};
};

/// Builds the canonical series name `<metric>{k=v,...}:<agg>`.
std::string SeriesName(const std::string& metric, const Labels& labels,
                       const char* agg);

class SeriesCollector {
 public:
  /// `store` must outlive the collector; `engine` may be null (no alert
  /// evaluation).
  SeriesCollector(SeriesCollectorOptions options, SeriesStore* store,
                  AlertRuleEngine* engine);
  ~SeriesCollector();

  SeriesCollector(const SeriesCollector&) = delete;
  SeriesCollector& operator=(const SeriesCollector&) = delete;

  /// Starts the background thread (no-op when period_ms <= 0 or already
  /// running).
  void Start();

  /// Stops and joins the background thread; idempotent, safe without
  /// Start(). A tick in progress completes first — Stop() never aborts
  /// one mid-write, so series stay well-ordered.
  void Stop();

  /// One synchronous tick on the caller's thread. Serialised with the
  /// background thread's ticks.
  void TickNow();

  /// Forecasts produced by the most recent tick.
  std::vector<BudgetForecast> LatestForecasts() const;

  std::uint64_t Ticks() const;
  bool running() const;
  const SeriesCollectorOptions& options() const { return options_; }

 private:
  void Run();
  void Tick();

  SeriesCollectorOptions options_;
  SeriesStore* const store_;
  AlertRuleEngine* const engine_;
  BudgetForecaster forecaster_;

  // Serialises Tick() between TickNow() callers and the thread.
  mutable std::mutex tick_mu_;
  std::int64_t last_tick_t_ns_ = 0;
  // Counter priming state: series base name -> last (value, t_ns).
  struct CounterPrev {
    double value = 0.0;
    std::int64_t t_ns = 0;
  };
  std::map<std::string, CounterPrev> counter_prev_;
  std::vector<BudgetForecast> latest_forecasts_;  // guarded by tick_mu_
  std::uint64_t ticks_ = 0;                       // guarded by tick_mu_

  // Budget gauge handles, created lazily per dataset (guarded by tick_mu_).
  struct BudgetGauges {
    Gauge* total = nullptr;
    Gauge* spent = nullptr;
    Gauge* remaining = nullptr;
    Gauge* charges = nullptr;
    Gauge* burn_rate = nullptr;
    Gauge* exhaustion_seconds = nullptr;
    Gauge* exhaustion_queries = nullptr;
  };
  std::map<std::string, BudgetGauges> budget_gauges_;

  // gupt_series_* instrumentation.
  Gauge* tracked_gauge_ = nullptr;
  Counter* points_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Counter* collections_ok_ = nullptr;
  Counter* collections_skipped_ = nullptr;
  Counter* evaluations_skipped_ = nullptr;
  Histogram* collect_duration_ = nullptr;

  mutable std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  bool thread_running_ = false;
  std::thread thread_;
};

}  // namespace series
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_SERIES_COLLECTOR_H_
