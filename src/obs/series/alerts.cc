#include "obs/series/alerts.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace gupt {
namespace obs {
namespace series {

namespace {

constexpr char kInstanceSep = '\x1f';

double Aggregate(AlertAgg agg, const std::vector<SeriesPoint>& points) {
  switch (agg) {
    case AlertAgg::kLatest:
      return points.back().value;
    case AlertAgg::kMean: {
      double sum = 0.0;
      for (const SeriesPoint& p : points) sum += p.value;
      return sum / static_cast<double>(points.size());
    }
    case AlertAgg::kMax: {
      double best = points.front().value;
      for (const SeriesPoint& p : points) best = std::max(best, p.value);
      return best;
    }
    case AlertAgg::kMin: {
      double best = points.front().value;
      for (const SeriesPoint& p : points) best = std::min(best, p.value);
      return best;
    }
    case AlertAgg::kDelta:
      return points.back().value - points.front().value;
  }
  return 0.0;
}

std::string FormatValue(double value) {
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

}  // namespace

const char* ToString(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarning:
      return "warning";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "unknown";
}

const char* ToString(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "unknown";
}

const char* ToString(AlertAgg agg) {
  switch (agg) {
    case AlertAgg::kLatest:
      return "latest";
    case AlertAgg::kMean:
      return "mean";
    case AlertAgg::kMax:
      return "max";
    case AlertAgg::kMin:
      return "min";
    case AlertAgg::kDelta:
      return "delta";
  }
  return "unknown";
}

AlertRuleEngine::AlertRuleEngine(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  rules_gauge_ = registry->GetGauge("gupt_alert_rules_count",
                                    "Alert rules loaded into the engine.");
  evaluations_counter_ =
      registry->GetCounter("gupt_alert_evaluations_total",
                           "Alert evaluation passes completed.");
  const char* transitions_help = "Alert instance state transitions.";
  transitions_pending_ = registry->GetCounter(
      "gupt_alert_transitions_total", transitions_help, {{"to", "pending"}});
  transitions_firing_ = registry->GetCounter(
      "gupt_alert_transitions_total", transitions_help, {{"to", "firing"}});
  transitions_resolved_ = registry->GetCounter(
      "gupt_alert_transitions_total", transitions_help, {{"to", "resolved"}});
  transitions_inactive_ = registry->GetCounter(
      "gupt_alert_transitions_total", transitions_help, {{"to", "inactive"}});
  const char* firing_help = "Alert instances currently firing, by severity.";
  firing_info_ = registry->GetGauge("gupt_alert_firing_count", firing_help,
                                    {{"severity", "info"}});
  firing_warning_ = registry->GetGauge("gupt_alert_firing_count", firing_help,
                                       {{"severity", "warning"}});
  firing_critical_ = registry->GetGauge("gupt_alert_firing_count", firing_help,
                                        {{"severity", "critical"}});
}

void AlertRuleEngine::AddRule(AlertRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
  if (rules_gauge_ != nullptr) {
    rules_gauge_->Set(static_cast<double>(rules_.size()));
  }
}

std::size_t AlertRuleEngine::NumRules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

std::vector<AlertRule> AlertRuleEngine::Rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_;
}

std::uint64_t AlertRuleEngine::Evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

void AlertRuleEngine::Transition(Instance* instance, AlertState next,
                                 std::int64_t unix_ms, std::uint64_t qid) {
  AlertInstanceStatus& status = instance->status;
  status.state = next;
  status.last_transition_unix_ms = unix_ms;
  status.last_transition_qid = qid;
  ++status.transitions;
  Counter* counter = nullptr;
  switch (next) {
    case AlertState::kPending:
      counter = transitions_pending_;
      break;
    case AlertState::kFiring:
      counter = transitions_firing_;
      break;
    case AlertState::kResolved:
      counter = transitions_resolved_;
      break;
    case AlertState::kInactive:
      counter = transitions_inactive_;
      break;
  }
  if (counter != nullptr) counter->Increment();
}

bool AlertRuleEngine::ThresholdValue(const AlertRule& rule,
                                     const SeriesStore& store,
                                     std::int64_t t_ns, double* value,
                                     std::string* detail) const {
  const std::int64_t min_t_ns = t_ns - rule.window_ms * 1000000;
  std::vector<SeriesPoint> points = store.Points(rule.series, min_t_ns);
  if (points.empty()) {
    *detail = "no data for " + rule.series;
    return false;
  }
  const double numerator = Aggregate(rule.agg, points);
  if (rule.denominator.empty()) {
    *value = numerator;
    *detail = rule.series + " " + ToString(rule.agg) + "=" +
              FormatValue(numerator);
    return true;
  }
  std::vector<SeriesPoint> den_points = store.Points(rule.denominator, min_t_ns);
  if (den_points.empty()) {
    *detail = "no data for " + rule.denominator;
    return false;
  }
  const double denominator = Aggregate(rule.agg, den_points);
  if (denominator != 0.0) {
    *value = numerator / denominator;
  } else {
    *value = numerator > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  *detail = rule.series + " / " + rule.denominator + " " + ToString(rule.agg) +
            "=" + FormatValue(numerator) + "/" + FormatValue(denominator);
  return true;
}

void AlertRuleEngine::Evaluate(const SeriesStore& store,
                               const std::vector<BudgetForecast>& forecasts,
                               std::int64_t t_ns, std::int64_t unix_ms,
                               std::uint64_t qid) {
  std::lock_guard<std::mutex> lock(mu_);
  ++evaluations_;
  if (evaluations_counter_ != nullptr) evaluations_counter_->Increment();

  // (condition, value, has_data, detail) per live instance this pass.
  struct Evaluation {
    const AlertRule* rule;
    std::string instance;
    bool condition = false;
    bool has_data = false;
    double value = 0.0;
    std::string detail;
  };
  std::vector<Evaluation> evaluations;
  for (const AlertRule& rule : rules_) {
    if (rule.burn_rate) {
      for (const BudgetForecast& f : forecasts) {
        if (!rule.dataset.empty() && rule.dataset != f.dataset) continue;
        Evaluation ev;
        ev.rule = &rule;
        ev.instance = f.dataset;
        ev.has_data = true;
        // -1 encodes "not burning" so the published value stays finite.
        ev.value = f.burning ? f.seconds_to_exhaustion : -1.0;
        ev.condition = f.burning && f.seconds_to_exhaustion <= rule.threshold;
        ev.detail = f.burning
                        ? "exhaustion in " +
                              FormatValue(f.seconds_to_exhaustion) +
                              "s (burn " +
                              FormatValue(f.window_rate_eps_per_s) + " eps/s)"
                        : "not burning";
        evaluations.push_back(std::move(ev));
      }
    } else {
      Evaluation ev;
      ev.rule = &rule;
      ev.has_data = ThresholdValue(rule, store, t_ns, &ev.value, &ev.detail);
      if (ev.has_data) {
        ev.condition = rule.fire_below ? ev.value <= rule.threshold
                                       : ev.value >= rule.threshold;
      }
      evaluations.push_back(std::move(ev));
    }
  }

  for (Evaluation& ev : evaluations) {
    const std::string key = ev.rule->name + kInstanceSep + ev.instance;
    auto it = instances_.find(key);
    if (it == instances_.end()) {
      Instance fresh;
      fresh.status.rule = ev.rule->name;
      fresh.status.instance = ev.instance;
      fresh.status.description = ev.rule->description;
      fresh.status.severity = ev.rule->severity;
      fresh.status.threshold = ev.rule->threshold;
      it = instances_.emplace(key, std::move(fresh)).first;
    }
    Instance& instance = it->second;
    AlertInstanceStatus& status = instance.status;
    status.value = ev.value;
    status.has_data = ev.has_data;
    status.detail = ev.detail;
    status.last_evaluated_unix_ms = unix_ms;
    if (ev.condition) {
      if (status.state != AlertState::kFiring) {
        if (status.state != AlertState::kPending) {
          Transition(&instance, AlertState::kPending, unix_ms, qid);
          instance.pending_since_ns = t_ns;
          status.pending_since_unix_ms = unix_ms;
        }
        if (t_ns - instance.pending_since_ns >= ev.rule->for_ms * 1000000) {
          Transition(&instance, AlertState::kFiring, unix_ms, qid);
          status.firing_since_unix_ms = unix_ms;
          ++status.fire_count;
        }
      }
    } else {
      if (status.state == AlertState::kFiring) {
        Transition(&instance, AlertState::kResolved, unix_ms, qid);
        status.resolved_unix_ms = unix_ms;
        status.firing_since_unix_ms = 0;
      } else if (status.state == AlertState::kPending) {
        Transition(&instance, AlertState::kInactive, unix_ms, qid);
      }
      // kInactive and kResolved are stable under a false condition.
    }
  }

  std::size_t firing_info = 0, firing_warning = 0, firing_critical = 0;
  for (const auto& [key, instance] : instances_) {
    if (instance.status.state != AlertState::kFiring) continue;
    switch (instance.status.severity) {
      case AlertSeverity::kInfo:
        ++firing_info;
        break;
      case AlertSeverity::kWarning:
        ++firing_warning;
        break;
      case AlertSeverity::kCritical:
        ++firing_critical;
        break;
    }
  }
  if (firing_info_ != nullptr) {
    firing_info_->Set(static_cast<double>(firing_info));
    firing_warning_->Set(static_cast<double>(firing_warning));
    firing_critical_->Set(static_cast<double>(firing_critical));
  }
}

std::vector<AlertInstanceStatus> AlertRuleEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertInstanceStatus> out;
  out.reserve(instances_.size());
  for (const auto& [key, instance] : instances_) {
    out.push_back(instance.status);
  }
  return out;
}

std::vector<std::string> AlertRuleEngine::FiringNames(
    AlertSeverity min_severity) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, instance] : instances_) {
    const AlertInstanceStatus& status = instance.status;
    if (status.state != AlertState::kFiring) continue;
    if (static_cast<int>(status.severity) < static_cast<int>(min_severity)) {
      continue;
    }
    out.push_back(status.instance.empty()
                      ? status.rule
                      : status.rule + "[" + status.instance + "]");
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<AlertRule> BuiltinAlertRules(const BuiltinRuleOptions& options) {
  std::vector<AlertRule> rules;

  AlertRule budget;
  budget.name = "budget_exhaustion_imminent";
  budget.description =
      "A dataset's forecasted time-to-epsilon-exhaustion dropped below the "
      "configured horizon; charges are irrevocable, so act before the cap.";
  budget.severity = AlertSeverity::kCritical;
  budget.burn_rate = true;
  budget.threshold = options.budget_horizon_seconds;
  budget.window_ms = options.window_ms;
  budget.for_ms = options.collector_period_ms;
  rules.push_back(std::move(budget));

  if (options.admission_queue_capacity > 0) {
    AlertRule queue;
    queue.name = "admission_queue_saturation";
    queue.description =
        "Admission queue depth at or above 80% of capacity; submissions "
        "will start refusing with kUnavailable at the cap.";
    queue.severity = AlertSeverity::kWarning;
    queue.series = "gupt_service_admission_queue_depth:value";
    queue.agg = AlertAgg::kLatest;
    queue.threshold =
        0.8 * static_cast<double>(options.admission_queue_capacity);
    queue.window_ms = options.window_ms;
    queue.for_ms = options.collector_period_ms;
    rules.push_back(std::move(queue));
  }

  if (options.chamber_pool_enabled) {
    AlertRule pool;
    pool.name = "chamber_pool_respawn_storm";
    pool.description =
        "Chamber-pool workers are crashing and being respawned on at "
        "least half of all leases; those blocks fall back to "
        "fork-per-block. (A steady crash-every-lease storm tops out just "
        "below a 1.0 ratio — the initial workers never respawn — so the "
        "threshold sits at 0.5, far above any healthy pool.)";
    pool.severity = AlertSeverity::kWarning;
    pool.series = "gupt_chamber_pool_respawns_total:rate";
    pool.denominator = "gupt_chamber_pool_leases_total:rate";
    pool.agg = AlertAgg::kMean;
    pool.threshold = 0.5;
    pool.window_ms = options.window_ms;
    pool.for_ms = options.collector_period_ms;
    rules.push_back(std::move(pool));
  }

  if (options.svt_session_capacity > 0) {
    AlertRule svt;
    svt.name = "svt_session_capacity_pressure";
    svt.description =
        "Live SVT sessions at or above 90% of capacity; further opens will "
        "refuse with kUnavailable.";
    svt.severity = AlertSeverity::kWarning;
    svt.series = "gupt_svt_sessions_active_count:value";
    svt.agg = AlertAgg::kLatest;
    svt.threshold = 0.9 * static_cast<double>(options.svt_session_capacity);
    svt.window_ms = options.window_ms;
    svt.for_ms = options.collector_period_ms;
    rules.push_back(std::move(svt));
  }

  return rules;
}

}  // namespace series
}  // namespace obs
}  // namespace gupt
