#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace gupt {
namespace obs {
namespace {

/// Relaxed CAS-loop add; std::atomic<double>::fetch_add is C++20 but not
/// universally lowered, so spell it out.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Canonical key for a label set: sorted by key, fields joined with \x1f.
std::string CanonicalLabelKey(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& [k, v] : sorted) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1f';
  }
  return key;
}

Labels SortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapePromValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable decimal; Prometheus accepts Go-style floats.
std::string FormatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream out;
    out.precision(precision);
    out << value;
    if (std::strtod(out.str().c_str(), nullptr) == value) return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

/// JSON has no Inf/NaN literals; clamp to null-free sentinels.
std::string FormatJsonNumber(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  return FormatNumber(value);
}

std::string PromLabelBlock(const Labels& labels, const std::string& extra_key,
                           const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + EscapePromValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + EscapePromValue(extra_value) + "\"";
  }
  out += '}';
  return out;
}

bool IsUnitWord(const std::string& word) {
  static const char* kUnits[] = {"seconds", "bytes",   "total", "count",
                                 "ratio",   "epsilon", "scale", "depth"};
  for (const char* unit : kUnits) {
    if (word == unit) return true;
  }
  return false;
}

}  // namespace

void Counter::Increment(double delta) {
  if (delta < 0) return;  // counters are monotone; ignore misuse
  AtomicAdd(&value_, delta);
}

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  std::size_t index =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
}

double Histogram::Mean() const {
  std::uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  std::vector<std::uint64_t> counts = BucketCounts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank || i + 1 == counts.size()) {
      if (i == bounds_.size()) {
        // +Inf bucket: the best point estimate is the largest finite edge.
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double hi = bounds_[i];
      const double lo = i == 0 ? std::min(0.0, hi) : bounds_[i - 1];
      if (counts[i] == 0) return hi;
      const double within = (rank - cumulative) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::DurationBuckets() {
  // 1us .. 100s, three steps per decade. Each edge is parsed from its
  // decimal literal so exports print "2.5e-06", not the drifted product
  // "2.4999999999999998e-06" that decade*step accumulates.
  std::vector<double> bounds;
  for (int exp = -6; exp <= 1; ++exp) {
    for (const char* step : {"1", "2.5", "5"}) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%se%d", step, exp);
      bounds.push_back(std::strtod(buf, nullptr));
    }
  }
  bounds.push_back(100.0);
  return bounds;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

bool MetricsRegistry::IsValidMetricName(const std::string& name) {
  // Lower-case words joined by single underscores.
  if (name.empty() || name.front() == '_' || name.back() == '_') return false;
  std::vector<std::string> words;
  std::string word;
  for (char c : name) {
    if (c == '_') {
      if (word.empty()) return false;  // doubled underscore
      words.push_back(word);
      word.clear();
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      word += c;
    } else {
      return false;
    }
  }
  if (!word.empty()) words.push_back(word);
  // gupt_<subsystem>_<name>_<unit>: at least four words, unit last.
  if (words.size() < 4) return false;
  if (words.front() != "gupt") return false;
  return IsUnitWord(words.back());
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& help, Kind kind,
    const Labels& labels, std::vector<double> bounds) {
  // Caller holds mu_.
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
    family.bounds = bounds;
    if (!IsValidMetricName(name)) invalid_names_.push_back(name);
  }
  if (family.kind != kind) {
    // Type conflict: the caller hands back a detached instrument so user
    // code keeps a usable handle; it is simply never exported.
    return nullptr;
  }
  const std::string key = CanonicalLabelKey(labels);
  auto [series_it, series_inserted] = family.series.try_emplace(key);
  if (series_inserted) {
    family.series_labels[key] = SortedLabels(labels);
    switch (kind) {
      case Kind::kCounter:
        series_it->second.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        series_it->second.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram: {
        std::vector<double> use =
            family.bounds.empty() ? std::move(bounds) : family.bounds;
        series_it->second.histogram =
            std::unique_ptr<Histogram>(new Histogram(std::move(use)));
        break;
      }
    }
  }
  return &series_it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument* instrument = FindOrCreate(name, help, Kind::kCounter, labels, {});
  if (instrument == nullptr) {
    orphan_counters_.push_back(std::make_unique<Counter>());
    return orphan_counters_.back().get();
  }
  return instrument->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument* instrument = FindOrCreate(name, help, Kind::kGauge, labels, {});
  if (instrument == nullptr) {
    orphan_gauges_.push_back(std::make_unique<Gauge>());
    return orphan_gauges_.back().get();
  }
  return instrument->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const Labels& labels) {
  if (bounds.empty()) bounds = Histogram::DurationBuckets();
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  std::lock_guard<std::mutex> lock(mu_);
  Instrument* instrument =
      FindOrCreate(name, help, Kind::kHistogram, labels, bounds);
  if (instrument == nullptr) {
    orphan_histograms_.push_back(
        std::unique_ptr<Histogram>(new Histogram(std::move(bounds))));
    return orphan_histograms_.back().get();
  }
  return instrument->histogram.get();
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    auto append_sample = [&out](const std::string& sample_name,
                                const std::string& label_block,
                                const std::string& value) {
      out += sample_name;
      out += label_block;
      out += ' ';
      out += value;
      out += '\n';
    };
    out += "# HELP ";
    out += name;
    out += ' ';
    out += EscapePromValue(family.help);
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    for (const auto& [key, instrument] : family.series) {
      const Labels& labels = family.series_labels.at(key);
      switch (family.kind) {
        case Kind::kCounter:
          append_sample(name, PromLabelBlock(labels, "", ""),
                        FormatNumber(instrument.counter->Value()));
          break;
        case Kind::kGauge:
          append_sample(name, PromLabelBlock(labels, "", ""),
                        FormatNumber(instrument.gauge->Value()));
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instrument.histogram;
          std::vector<std::uint64_t> counts = h.BucketCounts();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bucket_bounds().size(); ++i) {
            cumulative += counts[i];
            append_sample(
                name + "_bucket",
                PromLabelBlock(labels, "le", FormatNumber(h.bucket_bounds()[i])),
                std::to_string(cumulative));
          }
          cumulative += counts.back();
          append_sample(name + "_bucket", PromLabelBlock(labels, "le", "+Inf"),
                        std::to_string(cumulative));
          append_sample(name + "_sum", PromLabelBlock(labels, "", ""),
                        FormatNumber(h.Sum()));
          append_sample(name + "_count", PromLabelBlock(labels, "", ""),
                        std::to_string(h.Count()));
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ',';
    first_family = false;
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out += "{\"name\":\"";
    out += EscapeJson(name);
    out += "\",\"type\":\"";
    out += type;
    out += "\",\"help\":\"";
    out += EscapeJson(family.help);
    out += "\",\"series\":[";
    bool first_series = true;
    for (const auto& [key, instrument] : family.series) {
      if (!first_series) out += ',';
      first_series = false;
      out += "{\"labels\":{";
      const Labels& labels = family.series_labels.at(key);
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += EscapeJson(labels[i].first);
        out += "\":\"";
        out += EscapeJson(labels[i].second);
        out += '"';
      }
      out += "},";
      switch (family.kind) {
        case Kind::kCounter:
          out += "\"value\":";
          out += FormatJsonNumber(instrument.counter->Value());
          break;
        case Kind::kGauge:
          out += "\"value\":";
          out += FormatJsonNumber(instrument.gauge->Value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instrument.histogram;
          out += "\"count\":";
          out += std::to_string(h.Count());
          out += ",\"sum\":";
          out += FormatJsonNumber(h.Sum());
          out += ",\"p50\":";
          out += FormatJsonNumber(h.Quantile(0.50));
          out += ",\"p95\":";
          out += FormatJsonNumber(h.Quantile(0.95));
          out += ",\"p99\":";
          out += FormatJsonNumber(h.Quantile(0.99));
          out += ",\"buckets\":[";
          std::vector<std::uint64_t> counts = h.BucketCounts();
          for (std::size_t i = 0; i < counts.size(); ++i) {
            if (i > 0) out += ',';
            const bool is_inf = i == h.bucket_bounds().size();
            out += "{\"le\":";
            out += is_inf ? "null" : FormatJsonNumber(h.bucket_bounds()[i]);
            out += ",\"count\":";
            out += std::to_string(counts[i]);
            out += "}";
          }
          out += "]";
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::vector<MetricSample> MetricsRegistry::CollectSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, instrument] : family.series) {
      MetricSample sample;
      sample.name = name;
      sample.labels = family.series_labels.at(key);
      switch (family.kind) {
        case Kind::kCounter:
          sample.kind = MetricSample::Kind::kCounter;
          sample.value = instrument.counter->Value();
          break;
        case Kind::kGauge:
          sample.kind = MetricSample::Kind::kGauge;
          sample.value = instrument.gauge->Value();
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instrument.histogram;
          sample.kind = MetricSample::Kind::kHistogram;
          sample.count = h.Count();
          sample.sum = h.Sum();
          sample.p50 = h.Quantile(0.50);
          sample.p95 = h.Quantile(0.95);
          sample.p99 = h.Quantile(0.99);
          break;
        }
      }
      out.push_back(std::move(sample));
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [key, instrument] : family.series) {
      if (instrument.counter) instrument.counter->Reset();
      if (instrument.gauge) instrument.gauge->Reset();
      if (instrument.histogram) instrument.histogram->Reset();
    }
  }
}

std::vector<std::string> MetricsRegistry::invalid_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalid_names_;
}

}  // namespace obs
}  // namespace gupt
