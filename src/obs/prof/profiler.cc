#include "obs/prof/profiler.h"

#include <cxxabi.h>
#include <errno.h>
#include <execinfo.h>
#include <signal.h>
#include <stdlib.h>
#include <string.h>
#include <sys/time.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

namespace gupt {
namespace obs {
namespace prof {
namespace {

constexpr int kMaxFrames = 64;

// One sample slot. `depth` doubles as the commit flag: the handler fills
// `frames`/`stage_tag` first and publishes with a release store of the
// frame count; the collector reads depth with acquire and skips
// uncommitted (zero) slots. backtrace() never returns 0 frames from a
// live thread, so 0 is unambiguous.
struct SampleSlot {
  std::atomic<int> depth{0};
  const char* stage_tag = nullptr;
  void* frames[kMaxFrames];
};

// Handler-visible state. File-scope (not members) so the async-signal
// handler touches only plain atomics and a stable array pointer. The
// buffer is reused across Start() calls and never freed while armed, so
// a straggler handler on another thread can at worst write into a slot
// the collector already skipped.
std::atomic<bool> g_armed{false};
std::atomic<std::size_t> g_next{0};
std::atomic<std::uint64_t> g_dropped{0};
SampleSlot* g_slots = nullptr;
std::size_t g_capacity = 0;

thread_local const char* tl_stage_tag = nullptr;

// Async-signal-safe sample capture, shared by the SIGPROF handler and
// TickForTesting. Returns false when the buffer is full.
bool RecordSample() {
  std::size_t idx = g_next.fetch_add(1, std::memory_order_relaxed);
  if (idx >= g_capacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  SampleSlot& slot = g_slots[idx];
  slot.stage_tag = tl_stage_tag;
  int depth = backtrace(slot.frames, kMaxFrames);
  if (depth <= 0) {
    // Publish an empty-but-committed marker so the slot is not mistaken
    // for in-flight; FoldedStacks drops depth-0 stacks.
    depth = 0;
  }
  slot.depth.store(depth == 0 ? -1 : depth, std::memory_order_release);
  return true;
}

void SigprofHandler(int /*signo*/) {
  int saved_errno = errno;
  if (g_armed.load(std::memory_order_relaxed)) {
    RecordSample();
  }
  errno = saved_errno;
}

std::mutex& ControlMutex() {
  static std::mutex mu;
  return mu;
}

bool g_handler_installed = false;
std::chrono::steady_clock::time_point g_started_at;
ProfilerOptions g_options;

// Symbolize one return address, with caching. Produces a demangled
// function name with spaces and semicolons scrubbed (both are
// structural in the folded format), or `[0xADDR]` when the symbol table
// has nothing.
const std::string& SymbolFor(void* pc, std::map<void*, std::string>* cache) {
  auto it = cache->find(pc);
  if (it != cache->end()) return it->second;

  std::string name;
  char** symbols = backtrace_symbols(&pc, 1);
  if (symbols != nullptr) {
    // glibc format: "module(mangled+0xoff) [0xaddr]".
    const char* line = symbols[0];
    const char* open = strchr(line, '(');
    const char* plus = open != nullptr ? strchr(open, '+') : nullptr;
    if (open != nullptr && plus != nullptr && plus > open + 1) {
      std::string mangled(open + 1, plus);
      int status = 0;
      char* demangled =
          abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
      if (status == 0 && demangled != nullptr) {
        name = demangled;
      } else {
        name = mangled;
      }
      free(demangled);
    }
    free(symbols);
  }
  if (name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[%p]", pc);
    name = buf;
  }
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == ' ') c = '_';
  }
  return cache->emplace(pc, std::move(name)).first->second;
}

// Frames belonging to the sampling machinery itself (handler, signal
// trampoline, backtrace) — trimmed from the innermost end so folded
// stacks start at the interrupted user frame.
bool IsMachineryFrame(const std::string& name) {
  if (name.find("__restore_rt") != std::string::npos) return true;
  if (name.compare(0, 9, "backtrace") == 0) return true;
  if (name.find("obs::prof::") != std::string::npos &&
      (name.find("RecordSample") != std::string::npos ||
       name.find("SigprofHandler") != std::string::npos ||
       name.find("TickForTesting") != std::string::npos)) {
    return true;
  }
  return false;
}

}  // namespace

ScopedStageTag::ScopedStageTag(const char* tag) : previous_(tl_stage_tag) {
  tl_stage_tag = tag;
}

ScopedStageTag::~ScopedStageTag() { tl_stage_tag = previous_; }

const char* CurrentStageTag() { return tl_stage_tag; }

Profiler& Profiler::Get() {
  static Profiler* instance = new Profiler();
  return *instance;
}

bool Profiler::Start(const ProfilerOptions& options) {
  std::lock_guard<std::mutex> lock(ControlMutex());
  if (g_armed.load(std::memory_order_relaxed)) return false;
  if (options.hz < 1 || options.hz > 1000 || options.max_samples == 0) {
    return false;
  }

  if (g_slots == nullptr || g_capacity < options.max_samples) {
    delete[] g_slots;
    g_slots = new SampleSlot[options.max_samples];
    g_capacity = options.max_samples;
  } else {
    for (std::size_t i = 0; i < g_capacity; ++i) {
      g_slots[i].depth.store(0, std::memory_order_relaxed);
    }
  }
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_options = options;

  // backtrace()'s first call lazily dlopens libgcc (which mallocs);
  // doing it here keeps the signal handler allocation-free.
  void* warmup[4];
  backtrace(warmup, 4);

  if (!g_handler_installed) {
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &SigprofHandler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) return false;
    // Deliberately left installed for the process lifetime (the
    // gperftools approach): restoring SIG_DFL with a SIGPROF pending
    // would kill the process. Disarmed, the handler is a no-op.
    g_handler_installed = true;
  }

  g_started_at = std::chrono::steady_clock::now();
  g_armed.store(true, std::memory_order_release);

  // tv_usec must stay below one second or setitimer rejects the value
  // with EINVAL — hz = 1 is exactly the 1'000'000 µs boundary.
  const long interval_us = 1'000'000 / options.hz;
  itimerval timer{};
  timer.it_interval.tv_sec = interval_us / 1'000'000;
  timer.it_interval.tv_usec = interval_us % 1'000'000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_armed.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

Profile Profiler::Stop() {
  std::lock_guard<std::mutex> lock(ControlMutex());
  Profile profile;
  if (!g_armed.load(std::memory_order_relaxed)) return profile;

  itimerval disarm{};
  setitimer(ITIMER_PROF, &disarm, nullptr);
  g_armed.store(false, std::memory_order_release);

  profile.options = g_options;
  profile.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_started_at)
          .count();

  std::size_t claimed = g_next.load(std::memory_order_relaxed);
  std::size_t used = claimed < g_capacity ? claimed : g_capacity;
  profile.samples.reserve(used);
  for (std::size_t i = 0; i < used; ++i) {
    int depth = g_slots[i].depth.load(std::memory_order_acquire);
    if (depth <= 0) continue;  // in-flight (0) or failed capture (-1)
    Sample sample;
    sample.stage_tag = g_slots[i].stage_tag;
    sample.frames.assign(g_slots[i].frames, g_slots[i].frames + depth);
    profile.samples.push_back(std::move(sample));
  }
  profile.dropped = g_dropped.load(std::memory_order_relaxed);
  return profile;
}

bool Profiler::IsRunning() const {
  return g_armed.load(std::memory_order_acquire);
}

bool Profiler::TickForTesting() {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  return RecordSample();
}

std::string FoldedStacks(const Profile& profile) {
  std::map<void*, std::string> symbol_cache;
  std::map<std::string, std::int64_t> counts;

  for (const Sample& sample : profile.samples) {
    if (sample.frames.empty()) continue;

    // Symbolize innermost-first, then trim the sampling machinery:
    // everything at or inner to the signal trampoline, plus any
    // remaining profiler frames.
    std::vector<const std::string*> names;
    names.reserve(sample.frames.size());
    std::size_t start = 0;
    for (std::size_t i = 0; i < sample.frames.size(); ++i) {
      names.push_back(&SymbolFor(sample.frames[i], &symbol_cache));
      if (names.back()->find("__restore_rt") != std::string::npos) {
        start = i + 1;
      }
    }
    while (start < names.size() && IsMachineryFrame(*names[start])) ++start;
    if (start >= names.size()) continue;

    std::string line = "stage:";
    line += sample.stage_tag != nullptr ? sample.stage_tag : "untagged";
    for (std::size_t i = names.size(); i > start; --i) {
      line += ';';
      line += *names[i - 1];
    }
    ++counts[line];
  }

  std::string out;
  for (const auto& [stack, count] : counts) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::int64_t FoldedSampleCount(const std::string& folded) {
  std::int64_t total = 0;
  std::size_t pos = 0;
  while (pos < folded.size()) {
    std::size_t eol = folded.find('\n', pos);
    if (eol == std::string::npos) return -1;  // must be newline-terminated
    std::size_t space = folded.rfind(' ', eol);
    if (space == std::string::npos || space <= pos) return -1;
    const std::string stack = folded.substr(pos, space - pos);
    if (stack.empty() || stack.compare(0, 6, "stage:") != 0) return -1;
    errno = 0;
    char* end = nullptr;
    const std::string count_str = folded.substr(space + 1, eol - space - 1);
    long long count = strtoll(count_str.c_str(), &end, 10);
    if (errno != 0 || end == count_str.c_str() || *end != '\0' || count <= 0) {
      return -1;
    }
    total += count;
    pos = eol + 1;
  }
  return total;
}

}  // namespace prof
}  // namespace obs
}  // namespace gupt
