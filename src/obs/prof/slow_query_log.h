// Bounded slow-query log: the K worst queries by wall time, each with
// its full per-stage wall/CPU breakdown and resource ledger, joinable
// against /tracez and the audit log on `query_id`. Served at /slowz.
//
// Keeps the worst K ever seen (not the most recent K): a latency
// regression that happened an hour ago is exactly what the page is for.
// An optional threshold filters the noise floor so a busy service does
// not churn the ring with ordinary queries.

#ifndef GUPT_OBS_PROF_SLOW_QUERY_LOG_H_
#define GUPT_OBS_PROF_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/prof/rusage.h"

namespace gupt {
namespace obs {
namespace prof {

/// One pipeline stage of a slow query: wall span + coordinator
/// thread-CPU, mirroring the SpanRecords of the query's trace.
struct StageBreakdown {
  std::string name;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  bool ok = true;
};

struct SlowQueryEntry {
  std::uint64_t query_id = 0;
  std::string analyst;
  std::string dataset;
  std::string program;
  std::string status;  // "ok" or the error message
  double wall_seconds = 0;
  ResourceLedger resources;
  std::vector<StageBreakdown> stages;
  /// Wall-clock completion time (unix milliseconds) for display.
  std::int64_t completed_unix_ms = 0;
};

class SlowQueryLog {
 public:
  /// Keeps at most `capacity` entries; queries faster than
  /// `threshold_seconds` are counted but never retained (0 retains
  /// everything until capacity pressure applies).
  SlowQueryLog(std::size_t capacity, double threshold_seconds);

  /// Considers one completed query for retention. Returns true when the
  /// entry was retained (it may still rotate out later).
  bool Record(SlowQueryEntry entry);

  /// Current contents, worst (slowest) first.
  std::vector<SlowQueryEntry> Snapshot() const;

  std::size_t capacity() const { return capacity_; }
  double threshold_seconds() const { return threshold_seconds_; }
  /// Queries offered to Record() since construction.
  std::uint64_t total_considered() const;
  /// Queries that were retained at least momentarily.
  std::uint64_t total_retained() const;

 private:
  const std::size_t capacity_;
  const double threshold_seconds_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> entries_;  // unordered; sorted on Snapshot
  std::uint64_t considered_ = 0;
  std::uint64_t retained_ = 0;
};

}  // namespace prof
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_PROF_SLOW_QUERY_LOG_H_
