// Resource accounting primitives: thread/process CPU clocks and rusage
// snapshots, plus the per-query ResourceLedger the pipeline fills in.
//
// GUPT's performance story (paper §6, Fig. 6) is dominated by per-block
// sandbox cost — fork + copy + IPC — which wall-clock spans alone cannot
// attribute: overlapping workers hide CPU behind wall time, and forked
// children burn cycles the coordinator never sees. This header provides
// the exact counters: CLOCK_THREAD_CPUTIME_ID for per-stage coordinator
// CPU, RUSAGE_THREAD deltas for faults/context switches, and per-child
// rusage (captured by the process chamber via wait4) for what the
// sandboxed subprocesses actually cost.
//
// Layering: obs-level (std + POSIX only), so every runtime layer above
// can account resources without a cycle.

#ifndef GUPT_OBS_PROF_RUSAGE_H_
#define GUPT_OBS_PROF_RUSAGE_H_

#include <cstdint>
#include <string>

namespace gupt {
namespace obs {
namespace prof {

/// CPU nanoseconds consumed by the calling thread
/// (CLOCK_THREAD_CPUTIME_ID). Monotone per thread; differences between two
/// reads on the same thread are exact to the clock's granularity.
std::int64_t ThreadCpuNanos();

/// CPU nanoseconds consumed by the whole process, all threads
/// (CLOCK_PROCESS_CPUTIME_ID).
std::int64_t ProcessCpuNanos();

/// One getrusage() reading. `max_rss_kb` is a high-water mark, not a rate:
/// Delta() keeps the end value rather than subtracting.
struct RusageSnapshot {
  std::int64_t user_ns = 0;
  std::int64_t sys_ns = 0;
  std::int64_t max_rss_kb = 0;
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  std::int64_t voluntary_ctx_switches = 0;
  std::int64_t involuntary_ctx_switches = 0;
};

/// getrusage(RUSAGE_THREAD): the calling thread only (Linux).
RusageSnapshot ThreadRusage();

/// getrusage(RUSAGE_SELF): the whole process.
RusageSnapshot ProcessRusage();

/// getrusage(RUSAGE_CHILDREN): every waited-for child, cumulative.
RusageSnapshot ChildrenRusage();

/// Counter-wise end - begin; max_rss_kb takes the end (high-water) value.
RusageSnapshot Delta(const RusageSnapshot& begin, const RusageSnapshot& end);

/// The per-query resource ledger, filled by the pipeline driver
/// (coordinator-thread CPU + RUSAGE_THREAD deltas over the stage walk)
/// and the execute stage (per-child rusage summed over the block fan-out
/// when process isolation is on). Attached to QueryReport, summarised
/// onto AuditRecord, and served by /slowz.
struct ResourceLedger {
  /// Coordinator-thread CPU over the whole stage walk. With a sequential
  /// computation manager this includes the block executions; with a pool
  /// the workers' CPU shows up in gupt_threadpool_* instead.
  std::int64_t cpu_ns = 0;
  /// Summed rusage of the process-chamber children this query forked
  /// (zero for in-thread chambers).
  std::int64_t child_user_cpu_ns = 0;
  std::int64_t child_sys_cpu_ns = 0;
  /// Largest child high-water RSS observed (kB).
  std::int64_t child_max_rss_kb = 0;
  /// Coordinator RUSAGE_THREAD deltas over the walk.
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  std::int64_t voluntary_ctx_switches = 0;
  std::int64_t involuntary_ctx_switches = 0;
  /// Process high-water RSS at release time (kB).
  std::int64_t max_rss_kb = 0;

  /// Coordinator + child CPU, in seconds.
  double TotalCpuSeconds() const {
    return static_cast<double>(cpu_ns + child_user_cpu_ns +
                               child_sys_cpu_ns) /
           1e9;
  }

  /// Compact single line for audit records:
  ///   "cpu=3.2ms child_cpu=41.0ms maxrss=52108kB minflt=12 nvcsw=3/1".
  std::string Summary() const;
};

}  // namespace prof
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_PROF_RUSAGE_H_
