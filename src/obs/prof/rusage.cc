#include "obs/prof/rusage.h"

#include <sys/resource.h>
#include <time.h>

#include <cstdio>

namespace gupt {
namespace obs {
namespace prof {
namespace {

std::int64_t ClockNanos(clockid_t clock) {
  timespec ts{};
  if (clock_gettime(clock, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::int64_t TimevalNanos(const timeval& tv) {
  return static_cast<std::int64_t>(tv.tv_sec) * 1'000'000'000 +
         static_cast<std::int64_t>(tv.tv_usec) * 1'000;
}

RusageSnapshot Snapshot(int who) {
  rusage ru{};
  RusageSnapshot snap;
  if (getrusage(who, &ru) != 0) return snap;
  snap.user_ns = TimevalNanos(ru.ru_utime);
  snap.sys_ns = TimevalNanos(ru.ru_stime);
  snap.max_rss_kb = ru.ru_maxrss;
  snap.minor_faults = ru.ru_minflt;
  snap.major_faults = ru.ru_majflt;
  snap.voluntary_ctx_switches = ru.ru_nvcsw;
  snap.involuntary_ctx_switches = ru.ru_nivcsw;
  return snap;
}

}  // namespace

std::int64_t ThreadCpuNanos() { return ClockNanos(CLOCK_THREAD_CPUTIME_ID); }

std::int64_t ProcessCpuNanos() { return ClockNanos(CLOCK_PROCESS_CPUTIME_ID); }

RusageSnapshot ThreadRusage() {
#ifdef RUSAGE_THREAD
  return Snapshot(RUSAGE_THREAD);
#else
  return Snapshot(RUSAGE_SELF);
#endif
}

RusageSnapshot ProcessRusage() { return Snapshot(RUSAGE_SELF); }

RusageSnapshot ChildrenRusage() { return Snapshot(RUSAGE_CHILDREN); }

RusageSnapshot Delta(const RusageSnapshot& begin, const RusageSnapshot& end) {
  RusageSnapshot d;
  d.user_ns = end.user_ns - begin.user_ns;
  d.sys_ns = end.sys_ns - begin.sys_ns;
  d.max_rss_kb = end.max_rss_kb;
  d.minor_faults = end.minor_faults - begin.minor_faults;
  d.major_faults = end.major_faults - begin.major_faults;
  d.voluntary_ctx_switches =
      end.voluntary_ctx_switches - begin.voluntary_ctx_switches;
  d.involuntary_ctx_switches =
      end.involuntary_ctx_switches - begin.involuntary_ctx_switches;
  return d;
}

std::string ResourceLedger::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cpu=%.1fms child_cpu=%.1fms maxrss=%lldkB child_maxrss=%lldkB"
                " minflt=%lld majflt=%lld nvcsw=%lld/%lld",
                static_cast<double>(cpu_ns) / 1e6,
                static_cast<double>(child_user_cpu_ns + child_sys_cpu_ns) /
                    1e6,
                static_cast<long long>(max_rss_kb),
                static_cast<long long>(child_max_rss_kb),
                static_cast<long long>(minor_faults),
                static_cast<long long>(major_faults),
                static_cast<long long>(voluntary_ctx_switches),
                static_cast<long long>(involuntary_ctx_switches));
  return std::string(buf);
}

}  // namespace prof
}  // namespace obs
}  // namespace gupt
