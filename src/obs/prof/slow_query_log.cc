#include "obs/prof/slow_query_log.h"

#include <algorithm>

namespace gupt {
namespace obs {
namespace prof {

SlowQueryLog::SlowQueryLog(std::size_t capacity, double threshold_seconds)
    : capacity_(capacity == 0 ? 1 : capacity),
      threshold_seconds_(threshold_seconds < 0 ? 0 : threshold_seconds) {}

bool SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  ++considered_;
  if (entry.wall_seconds < threshold_seconds_) return false;
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    ++retained_;
    return true;
  }
  auto fastest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
        return a.wall_seconds < b.wall_seconds;
      });
  if (fastest->wall_seconds < entry.wall_seconds) {
    *fastest = std::move(entry);
    ++retained_;
    return true;
  }
  return false;
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::vector<SlowQueryEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              if (a.wall_seconds != b.wall_seconds) {
                return a.wall_seconds > b.wall_seconds;
              }
              return a.query_id < b.query_id;
            });
  return out;
}

std::uint64_t SlowQueryLog::total_considered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return considered_;
}

std::uint64_t SlowQueryLog::total_retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

}  // namespace prof
}  // namespace obs
}  // namespace gupt
