// Signal-based sampling CPU profiler.
//
// Arms setitimer(ITIMER_PROF): the kernel delivers SIGPROF to the
// process every 1/hz seconds of consumed CPU time, and the signal lands
// on whichever thread is currently running — so sample density is
// proportional to CPU use per thread, which is exactly the flame-graph
// weighting. The handler is async-signal-safe: it claims a slot in a
// pre-allocated sample buffer with one atomic fetch_add, fills it with
// backtrace() (warmed up before the handler is installed, because the
// first call lazily loads libgcc with malloc), tags it with the
// caller's thread-local pipeline stage, and publishes the slot with a
// release store. No locks, no allocation, errno preserved.
//
// Symbolization (backtrace_symbols + __cxa_demangle) happens at
// collection time, off the signal path, into the folded-stack format
// consumed by FlameGraph / speedscope:
//
//     stage:execute_blocks;gupt::exec::...;KMeansStep 42
//
// The root frame is always `stage:<tag>` from the thread-local set by
// ScopedStageTag, so samples attribute to pipeline stages even when a
// frame fails to symbolize.
//
// fork(2) children do not inherit interval timers, so process-chamber
// children never receive SIGPROF; the inherited handler is harmless and
// replaced by _exit() anyway.
//
// One profiler per process (SIGPROF and ITIMER_PROF are process-wide);
// Profiler::Get() is the singleton. Start() fails if already running.

#ifndef GUPT_OBS_PROF_PROFILER_H_
#define GUPT_OBS_PROF_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gupt {
namespace obs {
namespace prof {

/// RAII thread-local stage tag. The innermost tag on the current thread
/// becomes the `stage:<tag>` root frame of every sample taken while it
/// is alive. `tag` must be a string literal (or otherwise outlive the
/// scope): the signal handler reads the pointer asynchronously.
class ScopedStageTag {
 public:
  explicit ScopedStageTag(const char* tag);
  ~ScopedStageTag();

  ScopedStageTag(const ScopedStageTag&) = delete;
  ScopedStageTag& operator=(const ScopedStageTag&) = delete;

 private:
  const char* previous_;
};

/// The innermost tag on this thread, or nullptr.
const char* CurrentStageTag();

struct ProfilerOptions {
  /// Samples per second of consumed CPU time. 99 (not 100) avoids
  /// lockstep with common 10 ms periodic work.
  int hz = 99;
  /// Sample buffer capacity; sampling stops silently when full.
  /// 32768 samples × ~544 B ≈ 17 MiB, ~5.5 CPU-minutes at 99 Hz.
  std::size_t max_samples = 32768;
};

/// One collected sample: the stage tag at sampling time plus the raw
/// return addresses, innermost first.
struct Sample {
  const char* stage_tag;  // may be nullptr
  std::vector<void*> frames;
};

struct Profile {
  ProfilerOptions options;
  std::vector<Sample> samples;
  /// Samples not recorded because the buffer was full.
  std::uint64_t dropped = 0;
  double duration_seconds = 0;
};

class Profiler {
 public:
  static Profiler& Get();

  /// Installs the SIGPROF handler and arms ITIMER_PROF. Returns false
  /// (and does nothing) if a profile is already running or the options
  /// are invalid (hz < 1 or > 1000, max_samples == 0).
  bool Start(const ProfilerOptions& options);

  /// Disarms the timer, restores the previous SIGPROF disposition, and
  /// returns everything sampled since Start(). Safe to call when not
  /// running (returns an empty profile).
  Profile Stop();

  bool IsRunning() const;

  /// Deterministic test hook: records one sample exactly as the signal
  /// handler would (current thread's stack + stage tag), without any
  /// timer. Requires Start() first. Returns false if the buffer is full
  /// or the profiler is not running.
  bool TickForTesting();

 private:
  Profiler() = default;
};

/// Renders a profile as folded stacks: one line per unique stack,
/// `frame;frame;...;leaf count\n`, root-first, sorted by line. Frames
/// are demangled where possible, `[0xADDR]` otherwise; the stage tag
/// becomes the root `stage:<tag>` frame (or `stage:untagged`).
std::string FoldedStacks(const Profile& profile);

/// Total samples across a folded-stack string (sum of trailing counts).
/// Returns -1 if any line fails to parse — the format validator used by
/// tests and `gupt_cli profile`.
std::int64_t FoldedSampleCount(const std::string& folded);

}  // namespace prof
}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_PROF_PROFILER_H_
