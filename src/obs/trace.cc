#include "obs/trace.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace gupt {
namespace obs {
namespace {

std::string FormatDuration(std::chrono::nanoseconds d) {
  const double ns = static_cast<double>(d.count());
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

std::string FormatGauge(double value) {
  char buf[32];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", value);
  }
  return buf;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::int64_t NanosSinceTraceEpoch(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - TraceEpoch())
      .count();
}

namespace {
std::atomic<std::uint64_t>& QueryIdCounter() {
  static std::atomic<std::uint64_t> next{0};
  return next;
}
}  // namespace

std::uint64_t NextQueryId() {
  return QueryIdCounter().fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t LastQueryId() {
  return QueryIdCounter().load(std::memory_order_relaxed);
}

void QueryTrace::SetGauge(const std::string& name, double value) {
  for (auto& [k, v] : gauges_) {
    if (k == name) {
      v = value;
      return;
    }
  }
  gauges_.emplace_back(name, value);
}

bool QueryTrace::HasStage(const std::string& name) const {
  for (const SpanRecord& span : spans_) {
    if (span.name == name) return true;
  }
  return false;
}

std::vector<std::string> QueryTrace::StageNames() const {
  std::vector<std::string> names;
  names.reserve(spans_.size());
  for (const SpanRecord& span : spans_) names.push_back(span.name);
  return names;
}

std::optional<double> QueryTrace::GaugeValue(const std::string& name) const {
  for (const auto& [k, v] : gauges_) {
    if (k == name) return v;
  }
  return std::nullopt;
}

std::chrono::nanoseconds QueryTrace::TotalDuration() const {
  std::chrono::nanoseconds total{0};
  for (const SpanRecord& span : spans_) total += span.duration;
  return total;
}

std::int64_t QueryTrace::TotalStageCpuNanos() const {
  std::int64_t total = 0;
  for (const SpanRecord& span : spans_) {
    if (span.cpu_ns > 0) total += span.cpu_ns;
  }
  return total;
}

std::string QueryTrace::Summary() const {
  std::string out;
  for (const SpanRecord& span : spans_) {
    if (!out.empty()) out += ' ';
    out += span.name;
    out += '=';
    out += FormatDuration(span.duration);
    if (!span.ok) out += "(err)";
  }
  if (!gauges_.empty()) {
    out += " |";
    for (const auto& [name, value] : gauges_) {
      out += ' ';
      out += name;
      out += '=';
      out += FormatGauge(value);
    }
  }
  return out;
}

std::string QueryTrace::ToJson() const {
  std::string out = "{\"query_id\":";
  out += std::to_string(query_id_);
  out += ",\"spans\":[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (i > 0) out += ',';
    const SpanRecord& span = spans_[i];
    out += "{\"name\":\"";
    out += EscapeJson(span.name);
    out += "\",\"start_ns\":";
    out += std::to_string(span.start_ns);
    out += ",\"duration_ns\":";
    out += std::to_string(span.duration.count());
    if (span.cpu_ns >= 0) {
      out += ",\"cpu_ns\":";
      out += std::to_string(span.cpu_ns);
    }
    out += ",\"ok\":";
    out += span.ok ? "true" : "false";
    if (!span.note.empty()) {
      out += ",\"note\":\"";
      out += EscapeJson(span.note);
      out += '"';
    }
    out += "}";
  }
  out += "],\"block_spans\":[";
  for (std::size_t i = 0; i < block_spans_.size(); ++i) {
    if (i > 0) out += ',';
    const BlockSpan& span = block_spans_[i];
    out += "{\"block\":";
    out += std::to_string(span.block_index);
    out += ",\"worker_id\":";
    out += std::to_string(span.worker_id);
    out += ",\"start_ns\":";
    out += std::to_string(span.start_ns);
    out += ",\"duration_ns\":";
    out += std::to_string(span.duration_ns);
    out += ",\"ok\":";
    out += span.ok ? "true" : "false";
    out += "}";
  }
  out += "],\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += EscapeJson(gauges_[i].first);
    out += "\":";
    out += JsonNumber(gauges_[i].second);
  }
  out += "}}";
  return out;
}

void ScopedTimer::Stop() {
  if (stopped_ || trace_ == nullptr) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  SpanRecord span;
  span.name = std::move(name_);
  span.start_ns = NanosSinceTraceEpoch(start_);
  span.duration = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start_);
  span.ok = ok_;
  span.note = std::move(note_);
  trace_->AddSpan(std::move(span));
}

}  // namespace obs
}  // namespace gupt
