// Per-query pipeline tracing.
//
// A QueryTrace is the narrative half of observability: one record per
// pipeline stage (span) with wall time and outcome, plus a small set of
// named gauges for DP-specific facts (epsilon charged, noise scale, block
// count, gamma). The runtime builds one trace per query and attaches it to
// the QueryReport; the service layer summarises it into the audit log and
// retains recent traces in an introspect::TraceRing for /tracez export.
//
// A trace is owned and written by the thread coordinating one query; it is
// NOT thread-safe. Worker threads never touch it — per-block facts
// (including the BlockSpans carrying each block's worker-thread id) are
// folded in by the coordinator after the fan-out joins.
//
// All span start offsets are nanoseconds since the process-wide TraceEpoch,
// so spans from concurrently executing queries share one timeline and can
// be rendered together (e.g. as Chrome trace_event JSON).

#ifndef GUPT_OBS_TRACE_H_
#define GUPT_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gupt {
namespace obs {

/// The process-wide monotonic zero point for span start offsets (fixed the
/// first time anything asks for it).
std::chrono::steady_clock::time_point TraceEpoch();

/// Nanoseconds between TraceEpoch() and `tp`.
std::int64_t NanosSinceTraceEpoch(std::chrono::steady_clock::time_point tp);

/// Process-unique id for one query (monotone from 1). Assigned by the
/// runtime when a query enters the pipeline; carried by its trace, its log
/// lines (common/logging ScopedLogQueryId) and its /tracez spans.
std::uint64_t NextQueryId();

/// The newest query id issued so far (0 before the first query). Read-only
/// peek used by observers (the alert engine stamps state transitions with
/// it) — never allocates an id.
std::uint64_t LastQueryId();

/// One completed pipeline stage.
struct SpanRecord {
  std::string name;
  std::chrono::nanoseconds duration{0};
  /// Start offset in nanoseconds since TraceEpoch(); negative = unknown
  /// (a producer that only measured the duration).
  std::int64_t start_ns = -1;
  /// False when the stage returned an error (the query then failed).
  bool ok = true;
  /// Free-form detail, e.g. "l=64 beta=418" for the partition stage.
  std::string note;
  /// Coordinator-thread CPU consumed inside the stage
  /// (CLOCK_THREAD_CPUTIME_ID delta); negative = not measured.
  std::int64_t cpu_ns = -1;
};

/// One per-block chamber execution inside the execute_blocks fan-out.
/// Recorded separately from the stage spans so the stage vocabulary (and
/// the audit log's one-line summary) stays compact while /tracez can still
/// render the cross-thread fan-out.
struct BlockSpan {
  std::size_t block_index = 0;
  /// Stable ThreadPool worker id of the executing thread; 0 when the block
  /// ran sequentially on the coordinating thread.
  int worker_id = 0;
  std::int64_t start_ns = 0;  // nanoseconds since TraceEpoch()
  std::int64_t duration_ns = 0;
  /// False when the block's output is the fallback constant.
  bool ok = true;
};

/// The trace of one query through the GUPT pipeline.
class QueryTrace {
 public:
  void AddSpan(SpanRecord span) { spans_.push_back(std::move(span)); }
  void AddBlockSpan(BlockSpan span) { block_spans_.push_back(span); }
  void SetGauge(const std::string& name, double value);

  /// The process-unique query id (0 until the runtime assigns one).
  std::uint64_t query_id() const { return query_id_; }
  void set_query_id(std::uint64_t id) { query_id_ = id; }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<BlockSpan>& block_spans() const { return block_spans_; }
  const std::vector<std::pair<std::string, double>>& gauges() const {
    return gauges_;
  }

  bool HasStage(const std::string& name) const;
  /// Names of all recorded stages, in execution order.
  std::vector<std::string> StageNames() const;
  std::optional<double> GaugeValue(const std::string& name) const;
  /// Sum of all span durations.
  std::chrono::nanoseconds TotalDuration() const;
  /// Sum of measured span CPU times (spans with cpu_ns < 0 contribute 0).
  std::int64_t TotalStageCpuNanos() const;

  /// Compact single-line summary for audit logs:
  ///   "plan=1.2ms charge=3us exec=45ms ... | epsilon_charged=0.5 ..."
  std::string Summary() const;

  /// Full structured dump:
  /// {"query_id":...,"spans":[...],"block_spans":[...],"gauges":{...}}.
  std::string ToJson() const;

 private:
  std::uint64_t query_id_ = 0;
  std::vector<SpanRecord> spans_;
  std::vector<BlockSpan> block_spans_;
  // Insertion-ordered so the summary reads in pipeline order; a query
  // records a handful of gauges, so linear lookup is fine.
  std::vector<std::pair<std::string, double>> gauges_;
};

/// RAII stage timer: records a span on destruction (or at Stop()).
///
///   { ScopedTimer timer(&trace, "partition"); ... timer.note("l=64"); }
class ScopedTimer {
 public:
  ScopedTimer(QueryTrace* trace, std::string name)
      : trace_(trace),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  void set_ok(bool ok) { ok_ = ok; }
  void set_note(std::string note) { note_ = std::move(note); }

  /// Records the span now; further calls (and destruction) are no-ops.
  void Stop();

 private:
  QueryTrace* trace_;  // may be null: timing is then skipped entirely
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool ok_ = true;
  std::string note_;
  bool stopped_ = false;
};

}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_TRACE_H_
