// Per-query pipeline tracing.
//
// A QueryTrace is the narrative half of observability: one record per
// pipeline stage (span) with wall time and outcome, plus a small set of
// named gauges for DP-specific facts (epsilon charged, noise scale, block
// count, gamma). The runtime builds one trace per query and attaches it to
// the QueryReport; the service layer summarises it into the audit log.
//
// A trace is owned and written by the thread coordinating one query; it is
// NOT thread-safe. Worker threads never touch it — per-block facts are
// folded in by the coordinator after the fan-out joins.

#ifndef GUPT_OBS_TRACE_H_
#define GUPT_OBS_TRACE_H_

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gupt {
namespace obs {

/// One completed pipeline stage.
struct SpanRecord {
  std::string name;
  std::chrono::nanoseconds duration{0};
  /// False when the stage returned an error (the query then failed).
  bool ok = true;
  /// Free-form detail, e.g. "l=64 beta=418" for the partition stage.
  std::string note;
};

/// The trace of one query through the GUPT pipeline.
class QueryTrace {
 public:
  void AddSpan(SpanRecord span) { spans_.push_back(std::move(span)); }
  void SetGauge(const std::string& name, double value);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<std::pair<std::string, double>>& gauges() const {
    return gauges_;
  }

  bool HasStage(const std::string& name) const;
  /// Names of all recorded stages, in execution order.
  std::vector<std::string> StageNames() const;
  std::optional<double> GaugeValue(const std::string& name) const;
  /// Sum of all span durations.
  std::chrono::nanoseconds TotalDuration() const;

  /// Compact single-line summary for audit logs:
  ///   "plan=1.2ms charge=3us exec=45ms ... | epsilon_charged=0.5 ..."
  std::string Summary() const;

  /// Full structured dump: {"spans":[...],"gauges":{...}}.
  std::string ToJson() const;

 private:
  std::vector<SpanRecord> spans_;
  // Insertion-ordered so the summary reads in pipeline order; a query
  // records a handful of gauges, so linear lookup is fine.
  std::vector<std::pair<std::string, double>> gauges_;
};

/// RAII stage timer: records a span on destruction (or at Stop()).
///
///   { ScopedTimer timer(&trace, "partition"); ... timer.note("l=64"); }
class ScopedTimer {
 public:
  ScopedTimer(QueryTrace* trace, std::string name)
      : trace_(trace),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  void set_ok(bool ok) { ok_ = ok; }
  void set_note(std::string note) { note_ = std::move(note); }

  /// Records the span now; further calls (and destruction) are no-ops.
  void Stop();

 private:
  QueryTrace* trace_;  // may be null: timing is then skipped entirely
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool ok_ = true;
  std::string note_;
  bool stopped_ = false;
};

}  // namespace obs
}  // namespace gupt

#endif  // GUPT_OBS_TRACE_H_
