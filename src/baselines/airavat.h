// Airavat-style baseline runtime (Roy et al., NSDI 2010).
//
// Airavat runs an *untrusted mapper* per record inside a map-reduce job and
// a *trusted reducer* that adds the differential-privacy noise. The mapper
// must pre-declare its output range and the number of key-value pairs it
// emits per record; the runtime clamps emissions into the declared range
// (so a lying mapper cannot blow up the sensitivity) and the reducer
// calibrates Laplace noise to it. Restrictions the paper calls out (§7.3)
// are modelled: mappers see one record at a time with no shared state, the
// key space is fixed, and only the built-in reducers are available.

#ifndef GUPT_BASELINES_AIRAVAT_H_
#define GUPT_BASELINES_AIRAVAT_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "dp/accountant.h"

namespace gupt {
namespace baselines {

/// The untrusted map function: record -> (key, value) emissions.
using AiravatMapper =
    std::function<std::vector<std::pair<std::size_t, double>>(const Row&)>;

/// Trusted reducers Airavat offers. (SUM/COUNT/MEAN cover the paper's
/// examples; anything richer would have to go into the untrusted mapper,
/// which is exactly Airavat's expressiveness limitation.)
enum class AiravatReducer { kSum, kCount, kMean };

struct AiravatJob {
  AiravatMapper mapper;
  AiravatReducer reducer = AiravatReducer::kSum;
  /// Fixed reducer key space.
  std::size_t num_keys = 1;
  /// Mapper's declared per-emission value range; emissions are clamped.
  Range value_range{0.0, 1.0};
  /// Declared maximum emissions per record; excess emissions are dropped.
  std::size_t max_emissions_per_record = 1;
  /// Privacy budget for the whole job.
  double epsilon = 1.0;
};

struct AiravatResult {
  /// One noisy aggregate per key.
  std::vector<double> values;
  /// Emissions dropped or clamped because the mapper exceeded its
  /// declaration (diagnostic; the privacy guarantee never depends on the
  /// mapper being honest).
  std::size_t enforcement_actions = 0;
};

/// Runs a job. Charges `job.epsilon` to the accountant before releasing.
/// The noise is calibrated to max_emissions * max(|lo|, |hi|) for sums
/// (and an extra count sensitivity of max_emissions for means).
Result<AiravatResult> RunAiravatJob(const Dataset& data, const AiravatJob& job,
                                    dp::PrivacyAccountant* accountant,
                                    Rng* rng);

/// k-means as Airavat must express it: one map-reduce job per Lloyd
/// iteration (the mapper assigns its record to the nearest centre and
/// emits per-coordinate values plus a count; the trusted SUM reducer adds
/// the noise), with the budget split across the declared iteration count.
/// Iterative algorithms therefore hit the same budget-splitting wall as
/// PINQ (paper §7.3) — and the mapper's single declared value range must
/// cover every coordinate, inflating the sensitivity further.
struct AiravatKMeansOptions {
  std::size_t k = 4;
  std::size_t iterations = 10;
  double total_epsilon = 1.0;
  std::vector<std::size_t> feature_dims;
  std::vector<Range> feature_ranges;  // same arity as feature_dims
};

Result<std::vector<Row>> AiravatKMeans(const Dataset& data,
                                       const AiravatKMeansOptions& options,
                                       dp::PrivacyAccountant* accountant,
                                       Rng* rng);

}  // namespace baselines
}  // namespace gupt

#endif  // GUPT_BASELINES_AIRAVAT_H_
