#include "baselines/airavat.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/laplace.h"

namespace gupt {
namespace baselines {

Result<AiravatResult> RunAiravatJob(const Dataset& data, const AiravatJob& job,
                                    dp::PrivacyAccountant* accountant,
                                    Rng* rng) {
  if (!job.mapper) {
    return Status::InvalidArgument("job has no mapper");
  }
  if (job.num_keys == 0) {
    return Status::InvalidArgument("num_keys must be >= 1");
  }
  if (!(job.value_range.lo <= job.value_range.hi)) {
    return Status::InvalidArgument("invalid declared value range");
  }
  if (job.max_emissions_per_record == 0) {
    return Status::InvalidArgument("max_emissions_per_record must be >= 1");
  }
  if (!(job.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  GUPT_RETURN_IF_ERROR(accountant->Charge(job.epsilon, "airavat.job"));

  AiravatResult result;
  std::vector<double> sums(job.num_keys, 0.0);
  std::vector<double> counts(job.num_keys, 0.0);

  Row row;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    data.CopyRowInto(r, &row);
    // The mapper runs record-at-a-time; sandbox enforcement clamps values
    // into the declared range and drops emissions beyond the declaration.
    std::vector<std::pair<std::size_t, double>> emissions = job.mapper(row);
    if (emissions.size() > job.max_emissions_per_record) {
      result.enforcement_actions +=
          emissions.size() - job.max_emissions_per_record;
      emissions.resize(job.max_emissions_per_record);
    }
    for (const auto& [key, value] : emissions) {
      if (key >= job.num_keys) {
        ++result.enforcement_actions;  // emission to an undeclared key
        continue;
      }
      double clamped =
          vec::ClampScalar(value, job.value_range.lo, job.value_range.hi);
      if (clamped != value) ++result.enforcement_actions;
      sums[key] += clamped;
      counts[key] += 1.0;
    }
  }

  // One record contributes at most max_emissions values, each bounded by
  // the declared range, regardless of mapper behaviour.
  const double m = static_cast<double>(job.max_emissions_per_record);
  const double sum_sensitivity =
      m * std::max(std::fabs(job.value_range.lo), std::fabs(job.value_range.hi));
  const double count_sensitivity = m;

  result.values.resize(job.num_keys);
  switch (job.reducer) {
    case AiravatReducer::kSum:
      for (std::size_t key = 0; key < job.num_keys; ++key) {
        GUPT_ASSIGN_OR_RETURN(
            result.values[key],
            dp::LaplaceMechanism(sums[key], sum_sensitivity, job.epsilon, rng));
      }
      break;
    case AiravatReducer::kCount:
      for (std::size_t key = 0; key < job.num_keys; ++key) {
        GUPT_ASSIGN_OR_RETURN(
            result.values[key],
            dp::LaplaceMechanism(counts[key], count_sensitivity, job.epsilon,
                                 rng));
      }
      break;
    case AiravatReducer::kMean:
      for (std::size_t key = 0; key < job.num_keys; ++key) {
        GUPT_ASSIGN_OR_RETURN(
            double noisy_sum,
            dp::LaplaceMechanism(sums[key], sum_sensitivity, job.epsilon / 2.0,
                                 rng));
        GUPT_ASSIGN_OR_RETURN(
            double noisy_count,
            dp::LaplaceMechanism(counts[key], count_sensitivity,
                                 job.epsilon / 2.0, rng));
        result.values[key] = noisy_sum / std::max(1.0, noisy_count);
      }
      break;
  }
  return result;
}

Result<std::vector<Row>> AiravatKMeans(const Dataset& data,
                                       const AiravatKMeansOptions& options,
                                       dp::PrivacyAccountant* accountant,
                                       Rng* rng) {
  if (options.k == 0 || options.iterations == 0) {
    return Status::InvalidArgument("k and iterations must be >= 1");
  }
  if (options.feature_dims.empty() ||
      options.feature_dims.size() != options.feature_ranges.size()) {
    return Status::InvalidArgument(
        "feature_dims and feature_ranges must be non-empty and equal arity");
  }
  if (!(options.total_epsilon > 0.0)) {
    return Status::InvalidArgument("total_epsilon must be positive");
  }

  const std::size_t d = options.feature_dims.size();
  // The mapper declares ONE value range covering every emitted value:
  // all coordinate ranges plus the count emission's {0, 1}.
  Range value_range{0.0, 1.0};
  for (const Range& r : options.feature_ranges) {
    value_range.lo = std::min(value_range.lo, r.lo);
    value_range.hi = std::max(value_range.hi, r.hi);
  }

  // Data-independent initialisation, as in the PINQ baseline.
  std::vector<Row> centers(options.k, Row(d, 0.0));
  for (std::size_t c = 0; c < options.k; ++c) {
    for (std::size_t i = 0; i < d; ++i) {
      const Range& r = options.feature_ranges[i];
      centers[c][i] = rng->UniformDouble(r.lo, r.hi);
    }
  }

  const double eps_iter =
      options.total_epsilon / static_cast<double>(options.iterations);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    AiravatJob job;
    job.reducer = AiravatReducer::kSum;
    job.num_keys = options.k * (d + 1);
    job.value_range = value_range;
    job.max_emissions_per_record = d + 1;
    job.epsilon = eps_iter;
    // The mapper is per-record isolated: it can read the (public) current
    // centres captured here but cannot carry state between records.
    job.mapper = [&options, centers, d](const Row& row) {
      std::size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centers.size(); ++c) {
        double dist = 0.0;
        for (std::size_t i = 0; i < d; ++i) {
          double delta = row[options.feature_dims[i]] - centers[c][i];
          dist += delta * delta;
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      std::vector<std::pair<std::size_t, double>> emissions;
      emissions.reserve(d + 1);
      for (std::size_t i = 0; i < d; ++i) {
        emissions.emplace_back(best * (d + 1) + i,
                               row[options.feature_dims[i]]);
      }
      emissions.emplace_back(best * (d + 1) + d, 1.0);  // count
      return emissions;
    };

    GUPT_ASSIGN_OR_RETURN(AiravatResult result,
                          RunAiravatJob(data, job, accountant, rng));
    for (std::size_t c = 0; c < options.k; ++c) {
      double count = std::max(1.0, result.values[c * (d + 1) + d]);
      for (std::size_t i = 0; i < d; ++i) {
        const Range& r = options.feature_ranges[i];
        centers[c][i] = vec::ClampScalar(
            result.values[c * (d + 1) + i] / count, r.lo, r.hi);
      }
    }
  }

  std::sort(centers.begin(), centers.end(),
            [](const Row& a, const Row& b) { return a[0] < b[0]; });
  return centers;
}

}  // namespace baselines
}  // namespace gupt
