#include "baselines/pinq.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/laplace.h"
#include "dp/noisy_ops.h"

namespace gupt {
namespace baselines {

PinqQueryable::PinqQueryable(const Dataset* data,
                             dp::PrivacyAccountant* accountant, Rng* rng)
    : data_(data), accountant_(accountant), rng_(rng) {
  indices_.resize(data->num_rows());
  for (std::size_t i = 0; i < indices_.size(); ++i) indices_[i] = i;
}

PinqQueryable::PinqQueryable(const Dataset* data,
                             dp::PrivacyAccountant* accountant, Rng* rng,
                             std::vector<std::size_t> indices)
    : data_(data),
      accountant_(accountant),
      rng_(rng),
      indices_(std::move(indices)) {}

Status PinqQueryable::Charge(double epsilon, const std::string& label) {
  if (charging_suppressed_) return Status::OK();
  return accountant_->Charge(epsilon, label);
}

std::vector<double> PinqQueryable::ColumnClamped(std::size_t dim,
                                                 const Range& range) const {
  std::vector<double> column;
  column.reserve(indices_.size());
  const double* values = data_->col(dim);
  for (std::size_t i : indices_) {
    column.push_back(vec::ClampScalar(values[i], range.lo, range.hi));
  }
  return column;
}

Result<double> PinqQueryable::NoisyCount(double epsilon) {
  GUPT_RETURN_IF_ERROR(Charge(epsilon, "pinq.NoisyCount"));
  return dp::LaplaceMechanism(static_cast<double>(indices_.size()),
                              /*sensitivity=*/1.0, epsilon, rng_);
}

Result<double> PinqQueryable::NoisyAverage(std::size_t dim, const Range& range,
                                           double epsilon) {
  if (dim >= data_->num_dims()) {
    return Status::InvalidArgument("column out of range");
  }
  if (!(range.lo <= range.hi)) {
    return Status::InvalidArgument("invalid clamp range");
  }
  GUPT_RETURN_IF_ERROR(Charge(epsilon, "pinq.NoisyAverage"));
  std::vector<double> column = ColumnClamped(dim, range);
  // PINQ's NoisyAverage treats the empty part as the range midpoint.
  double mean = column.empty() ? 0.5 * (range.lo + range.hi)
                               : stats::Mean(column);
  double n = std::max<double>(1.0, static_cast<double>(column.size()));
  return dp::LaplaceMechanism(mean, range.width() / n, epsilon, rng_);
}

Result<double> PinqQueryable::NoisySum(std::size_t dim, const Range& range,
                                       double epsilon) {
  if (dim >= data_->num_dims()) {
    return Status::InvalidArgument("column out of range");
  }
  if (!(range.lo <= range.hi)) {
    return Status::InvalidArgument("invalid clamp range");
  }
  GUPT_RETURN_IF_ERROR(Charge(epsilon, "pinq.NoisySum"));
  std::vector<double> column = ColumnClamped(dim, range);
  double sum = 0.0;
  for (double v : column) sum += v;
  double sensitivity = std::max(std::fabs(range.lo), std::fabs(range.hi));
  return dp::LaplaceMechanism(sum, sensitivity, epsilon, rng_);
}

Result<std::size_t> PinqQueryable::ExponentialChoice(
    const std::function<std::vector<double>(const Row&)>& scorer,
    std::size_t num_candidates, double score_sensitivity, double epsilon) {
  if (!scorer || num_candidates == 0) {
    return Status::InvalidArgument("invalid exponential choice arguments");
  }
  GUPT_RETURN_IF_ERROR(Charge(epsilon, "pinq.ExponentialChoice"));
  std::vector<double> totals(num_candidates, 0.0);
  for (std::size_t i : indices_) {
    std::vector<double> contribution = scorer(data_->row(i));
    if (contribution.size() != num_candidates) {
      return Status::InvalidArgument("scorer arity mismatch");
    }
    for (std::size_t c = 0; c < num_candidates; ++c) {
      totals[c] += contribution[c];
    }
  }
  return dp::ExponentialChoice(totals, score_sensitivity, epsilon, rng_);
}

Result<std::vector<PinqQueryable>> PinqQueryable::Partition(
    const std::function<std::size_t(const Row&)>& key_fn,
    std::size_t num_keys) const {
  if (!key_fn || num_keys == 0) {
    return Status::InvalidArgument("invalid partition arguments");
  }
  std::vector<std::vector<std::size_t>> parts(num_keys);
  for (std::size_t i : indices_) {
    std::size_t key = key_fn(data_->row(i));
    if (key >= num_keys) {
      return Status::InvalidArgument("partition key out of range");
    }
    parts[key].push_back(i);
  }
  std::vector<PinqQueryable> result;
  result.reserve(num_keys);
  for (auto& part : parts) {
    result.push_back(
        PinqQueryable(data_, accountant_, rng_, std::move(part)));
  }
  return result;
}

Result<std::vector<double>> PinqQueryable::RunOnParts(
    std::vector<PinqQueryable>* parts, double epsilon,
    const std::string& label,
    const std::function<Result<double>(PinqQueryable*, double)>& op) {
  if (parts == nullptr || parts->empty() || !op) {
    return Status::InvalidArgument("invalid RunOnParts arguments");
  }
  // Parallel composition: the parts hold disjoint records, so one charge of
  // `epsilon` covers the identical operation on every part.
  GUPT_RETURN_IF_ERROR((*parts)[0].accountant_->Charge(epsilon, label));
  std::vector<double> outputs;
  outputs.reserve(parts->size());
  for (PinqQueryable& part : *parts) {
    part.charging_suppressed_ = true;
    Result<double> out = op(&part, epsilon);
    part.charging_suppressed_ = false;
    GUPT_RETURN_IF_ERROR(out.status());
    outputs.push_back(out.value());
  }
  return outputs;
}

Result<std::vector<Row>> PinqKMeans(const Dataset& data,
                                    const PinqKMeansOptions& options,
                                    dp::PrivacyAccountant* accountant,
                                    Rng* rng) {
  if (options.k == 0 || options.iterations == 0) {
    return Status::InvalidArgument("k and iterations must be >= 1");
  }
  if (options.feature_dims.empty() ||
      options.feature_dims.size() != options.feature_ranges.size()) {
    return Status::InvalidArgument(
        "feature_dims and feature_ranges must be non-empty and equal arity");
  }
  if (!(options.total_epsilon > 0.0)) {
    return Status::InvalidArgument("total_epsilon must be positive");
  }
  if (!(options.count_fraction > 0.0 && options.count_fraction < 1.0)) {
    return Status::InvalidArgument("count_fraction must be in (0, 1)");
  }

  const std::size_t dims = options.feature_dims.size();
  // Data-independent initialisation: uniform random centres inside the
  // declared box, as in McSherry's PINQ k-means demo — the analyst cannot
  // peek at the data to seed, so convergence genuinely needs iterations.
  std::vector<Row> centers(options.k, Row(dims, 0.0));
  for (std::size_t c = 0; c < options.k; ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      const Range& r = options.feature_ranges[d];
      centers[c][d] = rng->UniformDouble(r.lo, r.hi);
    }
  }

  // The analyst must pre-split the budget across iterations (Fig. 5's
  // pain point): eps_iter each, count_fraction of it on counts and the
  // rest spread across the per-dimension sums.
  const double eps_iter =
      options.total_epsilon / static_cast<double>(options.iterations);
  const double eps_count = options.count_fraction * eps_iter;
  const double eps_sum_per_dim =
      (1.0 - options.count_fraction) * eps_iter / static_cast<double>(dims);

  PinqQueryable root(&data, accountant, rng);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    auto key_fn = [&](const Row& row) {
      std::size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centers.size(); ++c) {
        double dist = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
          double delta = row[options.feature_dims[d]] - centers[c][d];
          dist += delta * delta;
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      return best;
    };
    GUPT_ASSIGN_OR_RETURN(std::vector<PinqQueryable> parts,
                          root.Partition(key_fn, options.k));

    GUPT_ASSIGN_OR_RETURN(
        std::vector<double> counts,
        PinqQueryable::RunOnParts(
            &parts, eps_count, "pinq.kmeans.count",
            [](PinqQueryable* part, double eps) {
              return part->NoisyCount(eps);
            }));

    std::vector<Row> sums(options.k, Row(dims, 0.0));
    for (std::size_t d = 0; d < dims; ++d) {
      std::size_t col = options.feature_dims[d];
      Range range = options.feature_ranges[d];
      GUPT_ASSIGN_OR_RETURN(
          std::vector<double> dim_sums,
          PinqQueryable::RunOnParts(
              &parts, eps_sum_per_dim, "pinq.kmeans.sum",
              [col, range](PinqQueryable* part, double eps) {
                return part->NoisySum(col, range, eps);
              }));
      for (std::size_t c = 0; c < options.k; ++c) sums[c][d] = dim_sums[c];
    }

    for (std::size_t c = 0; c < options.k; ++c) {
      double denom = std::max(1.0, counts[c]);
      for (std::size_t d = 0; d < dims; ++d) {
        const Range& r = options.feature_ranges[d];
        centers[c][d] = vec::ClampScalar(sums[c][d] / denom, r.lo, r.hi);
      }
    }
  }

  std::sort(centers.begin(), centers.end(),
            [](const Row& a, const Row& b) { return a[0] < b[0]; });
  return centers;
}

Result<Row> PinqLogisticRegression(
    const Dataset& data, const PinqLogisticRegressionOptions& options,
    dp::PrivacyAccountant* accountant, Rng* rng) {
  if (options.feature_dims.empty()) {
    return Status::InvalidArgument("no feature dimensions");
  }
  for (std::size_t d : options.feature_dims) {
    if (d >= data.num_dims()) {
      return Status::InvalidArgument("feature dim out of range");
    }
  }
  if (options.label_dim >= data.num_dims()) {
    return Status::InvalidArgument("label dim out of range");
  }
  if (options.iterations == 0 || !(options.total_epsilon > 0.0) ||
      !(options.feature_bound > 0.0)) {
    return Status::InvalidArgument("invalid PINQ logistic options");
  }

  const std::size_t d = options.feature_dims.size();
  const double n = static_cast<double>(data.num_rows());
  const double eps_iter =
      options.total_epsilon / static_cast<double>(options.iterations);
  const double eps_coord = eps_iter / static_cast<double>(d + 1);
  // |sigmoid - y| <= 1 and |x| <= bound, so one record moves the averaged
  // gradient coordinate by at most 2*bound/n (2/n for the bias).
  const double grad_sensitivity = 2.0 * options.feature_bound / n;
  const double bias_sensitivity = 2.0 / n;

  Row weights(d + 1, 0.0);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    Row gradient(d + 1, 0.0);
    std::vector<const double*> fcols(d);
    for (std::size_t i = 0; i < d; ++i) {
      fcols[i] = data.col(options.feature_dims[i]);
    }
    const double* labels = data.col(options.label_dim);
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
      double z = weights[d];
      for (std::size_t i = 0; i < d; ++i) {
        double x = vec::ClampScalar(fcols[i][r], -options.feature_bound,
                                    options.feature_bound);
        z += weights[i] * x;
      }
      double p = 1.0 / (1.0 + std::exp(-z));
      double err = p - (labels[r] > 0.5 ? 1.0 : 0.0);
      for (std::size_t i = 0; i < d; ++i) {
        double x = vec::ClampScalar(fcols[i][r], -options.feature_bound,
                                    options.feature_bound);
        gradient[i] += err * x;
      }
      gradient[d] += err;
    }
    vec::ScaleInPlace(&gradient, 1.0 / n);

    for (std::size_t i = 0; i <= d; ++i) {
      GUPT_RETURN_IF_ERROR(
          accountant->Charge(eps_coord, "pinq.logreg.gradient"));
      GUPT_ASSIGN_OR_RETURN(
          gradient[i],
          dp::LaplaceMechanism(
              gradient[i], i < d ? grad_sensitivity : bias_sensitivity,
              eps_coord, rng));
    }
    for (std::size_t i = 0; i <= d; ++i) {
      weights[i] -= options.learning_rate * gradient[i];
    }
  }
  return weights;
}

}  // namespace baselines
}  // namespace gupt
