// PINQ-style baseline runtime (McSherry, SIGMOD 2009).
//
// PINQ exposes low-level DP primitives and makes the *analyst* compose
// them, paying privacy budget per operation. The paper's §7.1.2 comparison
// runs k-means through PINQ: the analyst must pre-declare the iteration
// count to split the budget, and over-declaring wastes budget as noise
// (Fig. 5). This module reproduces that programming model faithfully:
//
//   * the analyst never sees raw rows, only noisy aggregates;
//   * every operation charges the accountant *before* releasing;
//   * operations on the disjoint parts of a Partition compose in parallel
//     (one charge covers all parts).
//
// Unlike GUPT, nothing here defends against state/timing attacks, and the
// analyst allocates the budget manually — exactly the gaps Table 1 lists.

#ifndef GUPT_BASELINES_PINQ_H_
#define GUPT_BASELINES_PINQ_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "dp/accountant.h"

namespace gupt {
namespace baselines {

/// A protected view over rows: the PINQ "queryable".
class PinqQueryable {
 public:
  /// The queryable borrows the dataset, ledger and RNG; all must outlive it.
  PinqQueryable(const Dataset* data, dp::PrivacyAccountant* accountant,
                Rng* rng);

  /// Noisy row count (sensitivity 1), charging `epsilon`.
  Result<double> NoisyCount(double epsilon);

  /// Noisy mean of column `dim` clamped to `range`, charging `epsilon`.
  Result<double> NoisyAverage(std::size_t dim, const Range& range,
                              double epsilon);

  /// Noisy sum of column `dim` clamped to `range`, charging `epsilon`.
  Result<double> NoisySum(std::size_t dim, const Range& range, double epsilon);

  /// Exponential-mechanism choice among candidates scored by the analyst's
  /// function (record -> per-candidate score contributions are summed).
  /// `score_sensitivity` bounds one record's effect on any candidate's
  /// total score. Charges `epsilon`.
  Result<std::size_t> ExponentialChoice(
      const std::function<std::vector<double>(const Row&)>& scorer,
      std::size_t num_candidates, double score_sensitivity, double epsilon);

  /// Splits rows by a key function into `num_keys` disjoint parts. The
  /// parts share this queryable's ledger, but identical operations applied
  /// across all parts should be issued through RunOnParts so that parallel
  /// composition charges the budget once.
  Result<std::vector<PinqQueryable>> Partition(
      const std::function<std::size_t(const Row&)>& key_fn,
      std::size_t num_keys) const;

  /// Parallel composition: charges `epsilon` once, then runs `op` on every
  /// part with charging suppressed. All parts must come from one Partition
  /// call (disjoint records).
  static Result<std::vector<double>> RunOnParts(
      std::vector<PinqQueryable>* parts, double epsilon,
      const std::string& label,
      const std::function<Result<double>(PinqQueryable*, double)>& op);

  std::size_t size() const { return indices_.size(); }

 private:
  PinqQueryable(const Dataset* data, dp::PrivacyAccountant* accountant,
                Rng* rng, std::vector<std::size_t> indices);

  Status Charge(double epsilon, const std::string& label);
  std::vector<double> ColumnClamped(std::size_t dim, const Range& range) const;

  const Dataset* data_;
  dp::PrivacyAccountant* accountant_;
  Rng* rng_;
  std::vector<std::size_t> indices_;
  /// When true (inside RunOnParts) the parent has already charged.
  bool charging_suppressed_ = false;
};

/// PINQ k-means as the paper benchmarks it (Fig. 5): the analyst declares
/// `iterations` up front and the budget is split evenly across them.
struct PinqKMeansOptions {
  std::size_t k = 4;
  std::size_t iterations = 20;
  double total_epsilon = 1.0;
  /// Feature columns and their public clamp ranges (same arity).
  std::vector<std::size_t> feature_dims;
  std::vector<Range> feature_ranges;
  /// Budget fraction per iteration spent on counts (rest on sums).
  double count_fraction = 0.3;
};

Result<std::vector<Row>> PinqKMeans(const Dataset& data,
                                    const PinqKMeansOptions& options,
                                    dp::PrivacyAccountant* accountant,
                                    Rng* rng);

/// PINQ-style logistic regression: noisy-gradient descent where each
/// iteration releases a DP average gradient (one charge per coordinate per
/// iteration). Like the k-means comparison, the analyst must pre-declare
/// the iteration count and split the budget across iterations — the same
/// Fig. 5 failure mode applies.
struct PinqLogisticRegressionOptions {
  std::vector<std::size_t> feature_dims;
  std::size_t label_dim = 0;
  std::size_t iterations = 20;
  double total_epsilon = 1.0;
  double learning_rate = 2.0;
  /// Public per-feature magnitude bound; features are clamped to
  /// [-bound, bound] so one record moves each gradient coordinate by at
  /// most 2*bound/n.
  double feature_bound = 1.0;
};

/// Returns the trained weights (bias last), epsilon fully spent.
Result<Row> PinqLogisticRegression(
    const Dataset& data, const PinqLogisticRegressionOptions& options,
    dp::PrivacyAccountant* accountant, Rng* rng);

}  // namespace baselines
}  // namespace gupt

#endif  // GUPT_BASELINES_PINQ_H_
