// Non-private reference execution.
//
// Every figure in the paper is anchored to the non-private answer ("the
// package was run on the dataset directly", §7.1.1). This helper runs an
// analysis program once over the full dataset with no chamber, no noise
// and no budget — for baselines and for measuring GUPT's overhead.

#ifndef GUPT_BASELINES_NONPRIVATE_H_
#define GUPT_BASELINES_NONPRIVATE_H_

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {
namespace baselines {

/// Runs a fresh instance of the program on the whole dataset.
Result<Row> RunNonPrivate(const ProgramFactory& factory, const Dataset& data);

}  // namespace baselines
}  // namespace gupt

#endif  // GUPT_BASELINES_NONPRIVATE_H_
