#include "baselines/nonprivate.h"

namespace gupt {
namespace baselines {

Result<Row> RunNonPrivate(const ProgramFactory& factory, const Dataset& data) {
  if (!factory) {
    return Status::InvalidArgument("program factory is null");
  }
  std::unique_ptr<AnalysisProgram> program = factory();
  if (!program) {
    return Status::InvalidArgument("program factory returned null");
  }
  return program->Run(data);
}

}  // namespace baselines
}  // namespace gupt
