// Deterministic failpoint injection for the GUPT hot paths.
//
// GUPT's privacy guarantee has to survive misbehaving analyst programs and
// infrastructure faults: a block that crashes, hangs, or returns garbage is
// replaced by a clamped fallback so the Laplace release stays differentially
// private (paper §4.1, §6.2). Failpoints let tests exercise exactly those
// paths, deterministically and under load: a named hook compiled into a hot
// path (chamber entry/exit, per-block execution, every pipeline stage, the
// admission queue, the introspection accept loop, ledger persistence) that
// a test — or the GUPT_FAILPOINTS environment variable — can arm with a
// trigger (always / every-Nth evaluation / probability-p from a seeded Rng
// stream) and an action (forced error, crash-in-child, injected latency,
// or counting noop).
//
// Naming scheme (linted by tools/check_metrics_names.py):
// dot-separated lower-case path mirroring the source layout, e.g.
//
//   exec.chamber.entry            exec.process_chamber.child
//   core.pipeline.aggregate       service.admission.submit
//   data.budget_store.save        service.introspect.accept
//
// Cost model: when the GUPT_FAILPOINTS_ENABLED build option is OFF the
// macros compile to nothing and Eval() constant-folds to kNone. When
// compiled in but with no failpoint armed (the production default), every
// site costs one relaxed atomic load and a predictable branch —
// bench/failpoint_overhead.cc holds this within noise of the baseline
// query latency. Arming any failpoint switches all sites onto a mutexed
// slow path; that is a test-only regime.
//
// Hit counters are exported through the obs metrics registry as
// gupt_failpoint_evaluations_total{name=...} / gupt_failpoint_fires_total
// {name=...} plus the gupt_failpoint_armed_count gauge.

#ifndef GUPT_TESTING_FAILPOINTS_FAILPOINTS_H_
#define GUPT_TESTING_FAILPOINTS_FAILPOINTS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace gupt {
namespace failpoints {

/// What an armed failpoint does to the site when it fires.
enum class Action {
  /// Count the fire and continue (useful with `delay` for pure latency
  /// injection, or alone for hit accounting).
  kNoop,
  /// The site fails: GUPT_FAILPOINT_STATUS returns an Internal error,
  /// value sites translate to their local failure convention.
  kError,
  /// The site dies: the process-chamber child _exits before writing its
  /// frame (a real crash, observed by the parent as EOF); sites that
  /// cannot crash safely treat this as kError.
  kCrash,
};

/// What Eval() tells the site to do. kNone = not armed / did not trigger.
enum class FireAction { kNone, kError, kCrash };

/// Trigger + action for one armed failpoint.
struct Config {
  /// Fire on evaluations number n, 2n, 3n, ... (counted from 1, across all
  /// threads — evaluation indices are allocated atomically, so the total
  /// number of fires in N evaluations is exactly floor(N / every_nth)
  /// regardless of interleaving). 0 = use `probability` instead.
  std::uint64_t every_nth = 1;
  /// When every_nth == 0: fire independently with this probability per
  /// evaluation, drawn from a dedicated Rng(seed, hash(name)) stream so
  /// the pattern is reproducible for a given seed.
  double probability = 0.0;
  /// Seed for the probability stream.
  std::uint64_t seed = 1;
  /// Stop firing after this many fires; 0 = unlimited.
  std::uint64_t max_fires = 0;
  /// Latency injected (in the evaluating thread) on every fire, before the
  /// action is reported. Sites that forward the verdict elsewhere (the
  /// process-chamber parent) use EvalDetailed and apply it there.
  std::chrono::microseconds delay{0};
  Action action = Action::kError;
};

/// Cumulative counters for one failpoint name (survive re-arming).
struct Stats {
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
};

/// Eval outcome for sites that need to apply the delay themselves.
struct Outcome {
  FireAction action = FireAction::kNone;
  std::chrono::microseconds delay{0};
  bool fired = false;
};

/// True when the build compiled failpoint sites in (GUPT_FAILPOINTS_ENABLED).
constexpr bool CompiledIn() {
#if GUPT_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

namespace internal {
/// Number of currently armed failpoints; the fast-path gate every site
/// checks. Exposed only for the inline Eval below.
extern std::atomic<std::uint64_t> g_armed_count;
Outcome EvalSlow(const char* name);
}  // namespace internal

/// Evaluates the named failpoint WITHOUT sleeping: the returned Outcome
/// carries the configured delay for the site to apply where it matters
/// (e.g. inside a forked child rather than the parent).
inline Outcome EvalDetailed(const char* name) {
#if GUPT_FAILPOINTS_ENABLED
  if (internal::g_armed_count.load(std::memory_order_relaxed) == 0) return {};
  return internal::EvalSlow(name);
#else
  (void)name;
  return {};
#endif
}

/// Evaluates the named failpoint, applying any configured delay in place
/// (the common case), and returns the action the site must take.
FireAction Eval(const char* name);

/// Arms `name` with `config`, replacing any existing arming. Validates the
/// config (probability in [0,1], a trigger selected, delay required for a
/// pure-noop delay arming is NOT enforced — noop with zero delay is a
/// legitimate hit counter).
Status Arm(const std::string& name, const Config& config);

/// Disarms `name`. Counters are retained. No-op when not armed.
void Disarm(const std::string& name);

/// Disarms everything (used by test fixtures).
void DisarmAll();

/// True when `name` is currently armed.
bool IsArmed(const std::string& name);

/// Cumulative evaluation/fire counters for `name` (zeroes if never seen).
Stats GetStats(const std::string& name);

/// Names ever armed in this process, in sorted order.
std::vector<std::string> KnownNames();

/// Parses one spec `name=action[,key=value]...` and arms it. Grammar (also
/// docs/testing.md):
///
///   <spec>   := <name>=<action>[,<option>]...
///   <action> := noop | error | crash | delay
///   <option> := every=<n> | p=<x> | seed=<n> | limit=<n> | delay_us=<n>
///
/// `delay` is shorthand for action=noop with a mandatory delay_us. With
/// neither `every` nor `p`, the failpoint fires on every evaluation.
Status ArmFromSpec(const std::string& spec);

/// Parses a semicolon-separated spec list (the GUPT_FAILPOINTS syntax).
/// Stops at the first malformed spec and returns its parse error; specs
/// before it stay armed.
Status ArmFromList(const std::string& specs);

/// Arms from the GUPT_FAILPOINTS environment variable, once per process
/// (subsequent calls are no-ops). Called lazily by the first Eval that
/// sees an armed count of zero... deliberately NOT: Eval stays a pure
/// load. The runtime entry points that want env arming call this at
/// startup (GuptService does; so does gupt_cli). Parse failures are
/// logged and skipped, never fatal.
void ArmFromEnvironment();

/// Whether a Status carries an injected failpoint error (by message tag).
bool IsInjected(const Status& status);

/// Message used for injected errors: "failpoint '<name>' injected fault".
std::string InjectedMessage(const char* name);

/// RAII arming for tests: arms on construction, restores the previous
/// state (previous config or disarmed) on destruction, and reports how
/// often the failpoint fired while this guard was live.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, Config config);
  ~ScopedFailpoint();

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  /// Fires since this guard armed the failpoint.
  std::uint64_t fires() const;
  /// Evaluations since this guard armed the failpoint.
  std::uint64_t evaluations() const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  bool had_previous_ = false;
  Config previous_;
  Stats at_arm_;
};

}  // namespace failpoints
}  // namespace gupt

// Site macros. GUPT_FAILPOINT evaluates for side effects (delay, counting)
// and ignores error verdicts — for sites with no failure channel.
// GUPT_FAILPOINT_STATUS returns an Internal error from the enclosing
// function when the failpoint fires with kError/kCrash (functions returning
// Status or Result<T>; Result converts implicitly).
#if GUPT_FAILPOINTS_ENABLED
#define GUPT_FAILPOINT(name) \
  do {                       \
    (void)::gupt::failpoints::Eval(name); \
  } while (0)
#define GUPT_FAILPOINT_STATUS(name)                                       \
  do {                                                                    \
    if (::gupt::failpoints::Eval(name) !=                                 \
        ::gupt::failpoints::FireAction::kNone) {                          \
      return ::gupt::Status::Internal(                                    \
          ::gupt::failpoints::InjectedMessage(name));                     \
    }                                                                     \
  } while (0)
#else
#define GUPT_FAILPOINT(name) \
  do {                       \
  } while (0)
#define GUPT_FAILPOINT_STATUS(name) \
  do {                              \
  } while (0)
#endif

#endif  // GUPT_TESTING_FAILPOINTS_FAILPOINTS_H_
