#include "testing/failpoints/failpoints.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace gupt {
namespace failpoints {
namespace {

constexpr char kInjectedTag[] = "' injected fault";

/// FNV-1a, used to give each failpoint name its own Rng stream for the
/// probability trigger so that two armed failpoints with the same seed
/// still draw independent, reproducible patterns.
std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct State {
  bool armed = false;
  Config config;
  Stats stats;
  /// Probability stream; reset on every (re-)arming so a given (seed,
  /// name) pair always yields the same fire pattern.
  std::unique_ptr<Rng> rng;
  obs::Counter* evaluations_counter = nullptr;
  obs::Counter* fires_counter = nullptr;
};

struct RegistryImpl {
  std::mutex mu;
  std::map<std::string, State> states;
  obs::Gauge* armed_gauge = obs::MetricsRegistry::Get().GetGauge(
      "gupt_failpoint_armed_count",
      "Failpoints currently armed (0 in production: armed failpoints "
      "switch every site onto the slow path).");
};

RegistryImpl& Registry() {
  static RegistryImpl* impl = new RegistryImpl();
  return *impl;
}

State& StateFor(RegistryImpl& registry, const std::string& name) {
  State& state = registry.states[name];
  if (state.evaluations_counter == nullptr) {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Get();
    state.evaluations_counter = metrics.GetCounter(
        "gupt_failpoint_evaluations_total",
        "Times an armed failpoint site was evaluated, by failpoint name.",
        {{"name", name}});
    state.fires_counter = metrics.GetCounter(
        "gupt_failpoint_fires_total",
        "Times a failpoint fired (performed its action), by failpoint name.",
        {{"name", name}});
  }
  return state;
}

std::uint64_t CountArmed(const RegistryImpl& registry) {
  std::uint64_t armed = 0;
  for (const auto& [name, state] : registry.states) {
    (void)name;
    if (state.armed) ++armed;
  }
  return armed;
}

void PublishArmedCount(RegistryImpl& registry) {
  std::uint64_t armed = CountArmed(registry);
  internal::g_armed_count.store(armed, std::memory_order_relaxed);
  registry.armed_gauge->Set(static_cast<double>(armed));
}

}  // namespace

namespace internal {

std::atomic<std::uint64_t> g_armed_count{0};

Outcome EvalSlow(const char* name) {
  RegistryImpl& registry = Registry();
  std::unique_lock<std::mutex> lock(registry.mu);
  auto it = registry.states.find(name);
  if (it == registry.states.end() || !it->second.armed) return {};
  State& state = it->second;
  state.stats.evaluations += 1;
  state.evaluations_counter->Increment();

  bool fired;
  if (state.config.every_nth > 0) {
    fired = state.stats.evaluations % state.config.every_nth == 0;
  } else {
    fired = state.rng->Bernoulli(state.config.probability);
  }
  if (fired && state.config.max_fires > 0 &&
      state.stats.fires >= state.config.max_fires) {
    fired = false;
  }
  if (!fired) return {};

  state.stats.fires += 1;
  state.fires_counter->Increment();
  Outcome outcome;
  outcome.fired = true;
  outcome.delay = state.config.delay;
  switch (state.config.action) {
    case Action::kNoop:
      outcome.action = FireAction::kNone;
      break;
    case Action::kError:
      outcome.action = FireAction::kError;
      break;
    case Action::kCrash:
      outcome.action = FireAction::kCrash;
      break;
  }
  return outcome;
}

}  // namespace internal

FireAction Eval(const char* name) {
  Outcome outcome = EvalDetailed(name);
  if (outcome.delay.count() > 0) {
    // Sleep outside the registry lock (EvalDetailed released it) so a
    // delayed site never stalls other failpoints.
    std::this_thread::sleep_for(outcome.delay);
  }
  return outcome.action;
}

Status Arm(const std::string& name, const Config& config) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name is empty");
  }
  if (config.every_nth == 0 &&
      !(config.probability >= 0.0 && config.probability <= 1.0)) {
    return Status::InvalidArgument(
        "failpoint '" + name + "': probability must be in [0, 1]");
  }
  if (config.delay.count() < 0) {
    return Status::InvalidArgument("failpoint '" + name +
                                   "': delay must be non-negative");
  }
  RegistryImpl& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  State& state = StateFor(registry, name);
  state.armed = true;
  state.config = config;
  state.rng = std::make_unique<Rng>(config.seed, HashName(name));
  PublishArmedCount(registry);
  return Status::OK();
}

void Disarm(const std::string& name) {
  RegistryImpl& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.states.find(name);
  if (it == registry.states.end()) return;
  it->second.armed = false;
  PublishArmedCount(registry);
}

void DisarmAll() {
  RegistryImpl& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, state] : registry.states) {
    (void)name;
    state.armed = false;
  }
  PublishArmedCount(registry);
}

bool IsArmed(const std::string& name) {
  RegistryImpl& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.states.find(name);
  return it != registry.states.end() && it->second.armed;
}

Stats GetStats(const std::string& name) {
  RegistryImpl& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.states.find(name);
  return it == registry.states.end() ? Stats{} : it->second.stats;
}

std::vector<std::string> KnownNames() {
  RegistryImpl& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.states.size());
  for (const auto& [name, state] : registry.states) {
    (void)state;
    names.push_back(name);
  }
  return names;  // std::map iteration order is already sorted
}

namespace {

Status ParseUint(const std::string& text, const std::string& what,
                 std::uint64_t* out) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::ParseError("failpoint spec: " + what +
                              " wants a non-negative integer, got '" + text +
                              "'");
  }
  *out = std::strtoull(text.c_str(), nullptr, 10);
  return Status::OK();
}

}  // namespace

Status ArmFromSpec(const std::string& spec) {
  std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::ParseError(
        "failpoint spec '" + spec + "' is not <name>=<action>[,<option>]...");
  }
  std::string name = spec.substr(0, eq);

  // Split the remainder on commas: first token the action, rest options.
  std::vector<std::string> tokens;
  std::size_t start = eq + 1;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    tokens.push_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
  if (tokens.empty() || tokens[0].empty()) {
    return Status::ParseError("failpoint spec '" + spec + "' has no action");
  }

  Config config;
  bool delay_action = false;
  const std::string& action = tokens[0];
  if (action == "noop") {
    config.action = Action::kNoop;
  } else if (action == "error") {
    config.action = Action::kError;
  } else if (action == "crash") {
    config.action = Action::kCrash;
  } else if (action == "delay") {
    config.action = Action::kNoop;
    delay_action = true;
  } else {
    return Status::ParseError("failpoint spec '" + spec +
                              "': unknown action '" + action +
                              "' (want noop|error|crash|delay)");
  }

  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::size_t opt_eq = tokens[i].find('=');
    if (opt_eq == std::string::npos) {
      return Status::ParseError("failpoint spec '" + spec + "': option '" +
                                tokens[i] + "' is not key=value");
    }
    std::string key = tokens[i].substr(0, opt_eq);
    std::string value = tokens[i].substr(opt_eq + 1);
    if (key == "every") {
      GUPT_RETURN_IF_ERROR(ParseUint(value, "every", &config.every_nth));
      if (config.every_nth == 0) {
        return Status::ParseError("failpoint spec '" + spec +
                                  "': every must be >= 1");
      }
    } else if (key == "p") {
      char* end = nullptr;
      config.probability = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || config.probability < 0.0 ||
          config.probability > 1.0) {
        return Status::ParseError("failpoint spec '" + spec +
                                  "': p wants a probability in [0, 1]");
      }
      config.every_nth = 0;  // select the probability trigger
    } else if (key == "seed") {
      GUPT_RETURN_IF_ERROR(ParseUint(value, "seed", &config.seed));
    } else if (key == "limit") {
      GUPT_RETURN_IF_ERROR(ParseUint(value, "limit", &config.max_fires));
    } else if (key == "delay_us") {
      std::uint64_t us = 0;
      GUPT_RETURN_IF_ERROR(ParseUint(value, "delay_us", &us));
      config.delay = std::chrono::microseconds(us);
    } else {
      return Status::ParseError(
          "failpoint spec '" + spec + "': unknown option '" + key +
          "' (want every|p|seed|limit|delay_us)");
    }
  }
  if (delay_action && config.delay.count() == 0) {
    return Status::ParseError("failpoint spec '" + spec +
                              "': action delay requires delay_us=<n>");
  }
  return Arm(name, config);
}

Status ArmFromList(const std::string& specs) {
  std::size_t start = 0;
  while (start < specs.size()) {
    std::size_t semi = specs.find(';', start);
    if (semi == std::string::npos) semi = specs.size();
    std::string spec = specs.substr(start, semi - start);
    if (!spec.empty()) {
      GUPT_RETURN_IF_ERROR(ArmFromSpec(spec));
    }
    start = semi + 1;
  }
  return Status::OK();
}

void ArmFromEnvironment() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("GUPT_FAILPOINTS");
    if (env == nullptr || env[0] == '\0') return;
    if (!CompiledIn()) {
      GUPT_LOG(kWarning)
          << "GUPT_FAILPOINTS is set but this build compiled failpoints "
             "out (GUPT_FAILPOINTS_ENABLED=OFF); ignoring";
      return;
    }
    Status armed = ArmFromList(env);
    if (!armed.ok()) {
      GUPT_LOG(kWarning) << "GUPT_FAILPOINTS parse failure (specs before the "
                            "malformed one stay armed): "
                         << armed.ToString();
    } else {
      GUPT_LOG(kInfo) << "GUPT_FAILPOINTS armed: " << env;
    }
  });
}

std::string InjectedMessage(const char* name) {
  return std::string("failpoint '") + name + kInjectedTag;
}

bool IsInjected(const Status& status) {
  return status.message().find(kInjectedTag) != std::string::npos;
}

ScopedFailpoint::ScopedFailpoint(std::string name, Config config)
    : name_(std::move(name)) {
  {
    RegistryImpl& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.states.find(name_);
    if (it != registry.states.end() && it->second.armed) {
      had_previous_ = true;
      previous_ = it->second.config;
    }
  }
  at_arm_ = GetStats(name_);
  Status armed = Arm(name_, config);
  if (!armed.ok()) {
    GUPT_LOG(kError) << "ScopedFailpoint: " << armed.ToString();
  }
}

ScopedFailpoint::~ScopedFailpoint() {
  if (had_previous_) {
    (void)Arm(name_, previous_);
  } else {
    Disarm(name_);
  }
}

std::uint64_t ScopedFailpoint::fires() const {
  return GetStats(name_).fires - at_arm_.fires;
}

std::uint64_t ScopedFailpoint::evaluations() const {
  return GetStats(name_).evaluations - at_arm_.evaluations;
}

}  // namespace failpoints
}  // namespace gupt
