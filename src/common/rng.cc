#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace gupt {
namespace {

constexpr unsigned __int128 Mult128() {
  // PCG 128-bit LCG multiplier: 2549297995355413924ULL << 64 |
  // 4865540595714422341ULL.
  return (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
         4865540595714422341ULL;
}

std::uint64_t RotR64(std::uint64_t v, unsigned rot) {
  return (v >> rot) | (v << ((-rot) & 63u));
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // pcg_setseq initialization: inc = (stream << 1) | 1, two steps around
  // seeding to decorrelate nearby seeds.
  inc_ = (static_cast<unsigned __int128>(stream) << 1) | 1;
  state_ = 0;
  NextUint64();
  state_ += (static_cast<unsigned __int128>(seed) << 64) | seed;
  NextUint64();
}

std::uint64_t Rng::NextUint64() {
  state_ = state_ * Mult128() + inc_;
  // XSL-RR output function.
  std::uint64_t xored =
      static_cast<std::uint64_t>(state_ >> 64) ^ static_cast<std::uint64_t>(state_);
  unsigned rot = static_cast<unsigned>(state_ >> 122);
  return RotR64(xored, rot);
}

std::uint64_t Rng::UniformUint64(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection: discard values in the biased tail.
  std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::UniformDoublePositive() {
  return static_cast<double>((NextUint64() >> 11) + 1) * 0x1.0p-53;
}

double Rng::Laplace(double scale) {
  assert(scale > 0);
  // Inverse CDF: u uniform in (-1/2, 1/2]; X = -scale * sgn(u) * ln(1-2|u|).
  double u = UniformDoublePositive() - 0.5;
  double sign = (u >= 0) ? 1.0 : -1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDoublePositive();
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  return -std::log(UniformDoublePositive()) / rate;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  // Floating-point round-off can leave target == total; return the last
  // positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  PermutationInto(n, perm.data());
  return perm;
}

void Rng::PermutationInto(std::size_t n, std::size_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  if (n == 0) return;
  // Identical Fisher-Yates loop (and therefore draw sequence) to Shuffle.
  for (std::size_t i = n - 1; i > 0; --i) {
    std::size_t j = static_cast<std::size_t>(UniformUint64(i + 1));
    std::swap(out[i], out[j]);
  }
}

Rng Rng::Fork() {
  return Rng(NextUint64(), ++fork_counter_ + NextUint64());
}

}  // namespace gupt
