// Status and Result<T>: lightweight error propagation for the GUPT runtime.
//
// The runtime never throws across module boundaries; fallible operations
// return Status (or Result<T> when they also produce a value). The style
// follows the Arrow/RocksDB convention: an ok() status carries no message,
// an error status carries a code and a human-readable message.

#ifndef GUPT_COMMON_STATUS_H_
#define GUPT_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace gupt {

/// Error taxonomy for the GUPT runtime.
enum class StatusCode {
  kOk = 0,
  /// Caller supplied an argument that violates a documented precondition.
  kInvalidArgument,
  /// A referenced entity (dataset, program, query) does not exist.
  kNotFound,
  /// An entity with the same key already exists.
  kAlreadyExists,
  /// The per-dataset privacy budget cannot cover the requested charge.
  kBudgetExhausted,
  /// An untrusted program violated its execution-chamber policy.
  kPolicyViolation,
  /// An untrusted program exceeded its cycle budget and was killed.
  kDeadlineExceeded,
  /// Malformed external input (e.g. a CSV file that does not parse).
  kParseError,
  /// Numerical routine failed to converge or produced non-finite values.
  kNumericalError,
  /// The service is at capacity and refused to queue the work; safe to
  /// retry later (nothing was charged or executed).
  kUnavailable,
  /// Internal invariant broken; indicates a bug in GUPT itself.
  kInternal,
};

/// Human-readable name of a status code (e.g. "BudgetExhausted").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or a (code, message) pair.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code must
  /// not carry a message; use the default constructor instead.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status PolicyViolation(std::string msg) {
    return Status(StatusCode::kPolicyViolation, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;` inside a Result<int> function.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. The status must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// The contained value, or `fallback` if this result is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates an error status from an expression that yields a Status.
#define GUPT_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::gupt::Status _gupt_status = (expr);            \
    if (!_gupt_status.ok()) return _gupt_status;     \
  } while (false)

/// Evaluates an expression yielding Result<T>; on error returns the status,
/// otherwise assigns the value to `lhs`.
#define GUPT_ASSIGN_OR_RETURN(lhs, expr)             \
  auto GUPT_CONCAT_(_gupt_result_, __LINE__) = (expr);             \
  if (!GUPT_CONCAT_(_gupt_result_, __LINE__).ok())                 \
    return GUPT_CONCAT_(_gupt_result_, __LINE__).status();         \
  lhs = std::move(GUPT_CONCAT_(_gupt_result_, __LINE__)).value()

#define GUPT_CONCAT_IMPL_(a, b) a##b
#define GUPT_CONCAT_(a, b) GUPT_CONCAT_IMPL_(a, b)

}  // namespace gupt

#endif  // GUPT_COMMON_STATUS_H_
