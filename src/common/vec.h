// Small dense vector/matrix helpers used throughout the runtime.
//
// GUPT's data model is "a collection of real-valued vectors" (paper §3.1),
// so a Row is simply std::vector<double>. These free functions cover the
// linear algebra the analytics programs need without pulling in a BLAS.

#ifndef GUPT_COMMON_VEC_H_
#define GUPT_COMMON_VEC_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace gupt {

using Row = std::vector<double>;

namespace vec {

/// Dot product. Vectors must have equal size.
double Dot(const Row& a, const Row& b);

/// Squared Euclidean distance between `a` and `b` (equal sizes).
double SquaredDistance(const Row& a, const Row& b);

/// Euclidean norm of `a`.
double Norm(const Row& a);

/// a + b, element-wise.
Row Add(const Row& a, const Row& b);

/// a - b, element-wise.
Row Sub(const Row& a, const Row& b);

/// s * a.
Row Scale(const Row& a, double s);

/// In-place a += b.
void AddInPlace(Row* a, const Row& b);

/// In-place a *= s.
void ScaleInPlace(Row* a, double s);

/// Element-wise clamp of `v` into [lo[i], hi[i]]. All sizes must match.
Row Clamp(const Row& v, const Row& lo, const Row& hi);

/// Clamp a scalar into [lo, hi].
double ClampScalar(double x, double lo, double hi);

}  // namespace vec

namespace stats {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Population variance (divide by n); 0 for fewer than one element.
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// Exact q-quantile (q in [0,1]) by linear interpolation on the sorted
/// input. Errors on empty input or q outside [0,1].
Result<double> Quantile(std::vector<double> xs, double q);

/// Root-mean-square error between paired sequences (equal sizes).
double Rmse(const std::vector<double>& estimates,
            const std::vector<double>& truths);

/// Per-dimension mean of equally-sized rows; errors on empty input.
Result<Row> MeanRows(const std::vector<Row>& rows);

}  // namespace stats

}  // namespace gupt

#endif  // GUPT_COMMON_VEC_H_
