#include "common/status.h"

namespace gupt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kPolicyViolation:
      return "PolicyViolation";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gupt
