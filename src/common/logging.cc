#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

namespace gupt {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void DefaultSink(LogLevel level, const std::string& message) {
  std::string line = internal::FormatLogLine(level, message);
  std::fprintf(stderr, "%s\n", line.c_str());
}

/// The initial threshold: GUPT_LOG_LEVEL when set and valid, else warning.
LogLevel InitialLevel() {
  const char* env = std::getenv("GUPT_LOG_LEVEL");
  if (env != nullptr) {
    std::optional<LogLevel> parsed = ParseLogLevel(env);
    if (parsed.has_value()) return *parsed;
    std::fprintf(stderr,
                 "[gupt] ignoring unrecognised GUPT_LOG_LEVEL=%s "
                 "(want debug|info|warn|error)\n",
                 env);
  }
  return LogLevel::kWarning;
}

thread_local std::uint64_t tls_log_query_id = 0;

}  // namespace

ScopedLogQueryId::ScopedLogQueryId(std::uint64_t query_id)
    : previous_(tls_log_query_id) {
  tls_log_query_id = query_id;
}

ScopedLogQueryId::~ScopedLogQueryId() { tls_log_query_id = previous_; }

std::uint64_t ScopedLogQueryId::current() { return tls_log_query_id; }

std::optional<LogLevel> ParseLogLevel(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

namespace internal {

std::string FormatLogLine(LogLevel level, const std::string& message) {
  // ISO-8601 UTC with millisecond precision.
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[80];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms));

  std::ostringstream line;
  line << '[' << stamp << ' ' << LevelName(level)
       << " tid=" << std::this_thread::get_id();
  if (tls_log_query_id != 0) line << " qid=" << tls_log_query_id;
  line << "] " << message;
  return line.str();
}

}  // namespace internal

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

Logger::Logger() : min_level_(InitialLevel()), sink_(DefaultSink) {}

void Logger::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink ? std::move(sink) : Sink(DefaultSink);
}

void Logger::Log(LogLevel level, const std::string& message) {
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (level < min_level_) return;
    sink = sink_;
  }
  sink(level, message);
}

}  // namespace gupt
