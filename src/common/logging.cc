#include "common/logging.h"

#include <cstdio>

namespace gupt {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void DefaultSink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[gupt %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

Logger::Logger() : sink_(DefaultSink) {}

void Logger::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink ? std::move(sink) : Sink(DefaultSink);
}

void Logger::Log(LogLevel level, const std::string& message) {
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (level < min_level_) return;
    sink = sink_;
  }
  sink(level, message);
}

}  // namespace gupt
