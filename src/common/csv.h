// Minimal CSV reader/writer for numeric tables.
//
// GUPT's dataset manager ingests "a collection of real valued vectors"
// (paper §3.1); in practice these arrive as CSV exports. This parser handles
// the numeric subset: comma-separated doubles, optional header row,
// '#'-prefixed comment lines, and blank lines.

#ifndef GUPT_COMMON_CSV_H_
#define GUPT_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/vec.h"

namespace gupt {
namespace csv {

/// A parsed numeric CSV: optional column names plus rectangular rows.
struct Table {
  std::vector<std::string> column_names;  // empty when no header present
  std::vector<Row> rows;
};

/// Parses CSV text. If `has_header` is true the first non-comment line is
/// taken as column names. All data rows must have the same arity and every
/// field must parse as a double.
Result<Table> Parse(const std::string& text, bool has_header);

/// Reads and parses a CSV file from disk.
Result<Table> ReadFile(const std::string& path, bool has_header);

/// Serialises a table; writes a header line when column_names is non-empty.
std::string Format(const Table& table);

/// Writes a table to disk, overwriting any existing file.
Status WriteFile(const std::string& path, const Table& table);

}  // namespace csv
}  // namespace gupt

#endif  // GUPT_COMMON_CSV_H_
