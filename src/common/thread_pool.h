// Fixed-size worker pool used by the computation manager.
//
// The paper's computation manager "automatically parallelizes the task
// across a cluster" (§1); in this reproduction the cluster is a pool of
// worker threads, each standing in for a cluster node running the trusted
// client component.

#ifndef GUPT_COMMON_THREAD_POOL_H_
#define GUPT_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace gupt {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

  /// Stable, process-unique id of the calling pool worker (1-based; ids
  /// are drawn from one global counter across all pools, so a worker id
  /// identifies a thread for the process lifetime). Returns 0 when the
  /// calling thread is not a ThreadPool worker. Used to attribute
  /// per-block trace spans to the thread that ran them (obs::BlockSpan).
  static int CurrentWorkerId();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// The pool must be otherwise idle (Wait semantics are pool-wide).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<QueuedTask> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;

  // Observability handles (process-global registry; see docs/observability.md).
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* wait_histogram_;
  obs::Histogram* run_histogram_;
  obs::Counter* tasks_counter_;
};

}  // namespace gupt

#endif  // GUPT_COMMON_THREAD_POOL_H_
