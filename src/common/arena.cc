#include "common/arena.h"

#include <algorithm>

namespace gupt {
namespace {

std::size_t AlignUp(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t initial_chunk_bytes)
    : next_chunk_bytes_(std::max<std::size_t>(initial_chunk_bytes, 64)) {}

Arena::Chunk& Arena::GrowFor(std::size_t bytes) {
  // Later chunks may already exist from before a Reset; reuse the first
  // one large enough before allocating new capacity.
  while (active_ < chunks_.size()) {
    if (chunks_[active_].capacity - chunks_[active_].used >= bytes) {
      return chunks_[active_];
    }
    ++active_;
  }
  std::size_t capacity = std::max(next_chunk_bytes_, bytes);
  next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(capacity);
  chunk.capacity = capacity;
  bytes_reserved_ += capacity;
  chunks_.push_back(std::move(chunk));
  active_ = chunks_.size() - 1;
  return chunks_.back();
}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  if (align == 0) align = 1;
  Chunk* chunk = nullptr;
  std::size_t aligned_used = 0;
  if (active_ < chunks_.size()) {
    chunk = &chunks_[active_];
    aligned_used = AlignUp(chunk->used, align);
    if (aligned_used + bytes > chunk->capacity) chunk = nullptr;
  }
  if (chunk == nullptr) {
    // New chunks come from make_unique and are maximally aligned at
    // offset 0; request headroom for the worst-case padding.
    chunk = &GrowFor(bytes + align);
    aligned_used = AlignUp(chunk->used, align);
  }
  void* out = chunk->data.get() + aligned_used;
  bytes_allocated_ += (aligned_used - chunk->used) + bytes;
  chunk->used = aligned_used + bytes;
  return out;
}

void Arena::Reset() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_ = 0;
  bytes_allocated_ = 0;
}

void Arena::Release() {
  chunks_.clear();
  active_ = 0;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace gupt
