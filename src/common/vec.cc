#include "common/vec.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gupt {
namespace vec {

double Dot(const Row& a, const Row& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredDistance(const Row& a, const Row& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Norm(const Row& a) { return std::sqrt(Dot(a, a)); }

Row Add(const Row& a, const Row& b) {
  assert(a.size() == b.size());
  Row out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Row Sub(const Row& a, const Row& b) {
  assert(a.size() == b.size());
  Row out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Row Scale(const Row& a, double s) {
  Row out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void AddInPlace(Row* a, const Row& b) {
  assert(a->size() == b.size());
  for (std::size_t i = 0; i < b.size(); ++i) (*a)[i] += b[i];
}

void ScaleInPlace(Row* a, double s) {
  for (double& x : *a) x *= s;
}

Row Clamp(const Row& v, const Row& lo, const Row& hi) {
  assert(v.size() == lo.size() && v.size() == hi.size());
  Row out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = ClampScalar(v[i], lo[i], hi[i]);
  }
  return out;
}

double ClampScalar(double x, double lo, double hi) {
  assert(lo <= hi);
  return std::min(std::max(x, lo), hi);
}

}  // namespace vec

namespace stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mu = Mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    double d = x - mu;
    sum += d * d;
  }
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

Result<double> Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) {
    return Status::InvalidArgument("quantile of an empty sequence");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile q must be in [0, 1]");
  }
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Rmse(const std::vector<double>& estimates,
            const std::vector<double>& truths) {
  assert(estimates.size() == truths.size());
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    double d = estimates[i] - truths[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(estimates.size()));
}

Result<Row> MeanRows(const std::vector<Row>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("mean of an empty row set");
  }
  Row acc(rows[0].size(), 0.0);
  for (const Row& r : rows) {
    if (r.size() != acc.size()) {
      return Status::InvalidArgument("rows have inconsistent dimensions");
    }
    vec::AddInPlace(&acc, r);
  }
  vec::ScaleInPlace(&acc, 1.0 / static_cast<double>(rows.size()));
  return acc;
}

}  // namespace stats
}  // namespace gupt
