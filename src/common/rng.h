// Deterministic random number generation for GUPT.
//
// All randomness in the runtime (noise sampling, block partitioning,
// synthetic data generation) flows through Rng so that experiments are
// reproducible from a seed. The engine is PCG64 (O'Neill, 2014) implemented
// locally; distributions are implemented here rather than with
// <random> adaptors so that streams are identical across standard-library
// implementations.

#ifndef GUPT_COMMON_RNG_H_
#define GUPT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace gupt {

/// PCG-XSL-RR 128/64 pseudo-random engine with distribution helpers.
///
/// Not cryptographically secure; DP guarantees in this codebase are stated
/// against an adversary who cannot predict the noise stream, as is standard
/// for research DP runtimes.
class Rng {
 public:
  /// Seeds the engine. Two Rng instances with equal (seed, stream) produce
  /// identical streams; different `stream` values give independent streams
  /// for the same seed.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t UniformUint64(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Uniform double in (0, 1] — never returns exactly zero. Used where a
  /// logarithm of the sample is taken.
  double UniformDoublePositive();

  /// Laplace(0, scale) sample via inverse CDF. scale > 0.
  double Laplace(double scale);

  /// Standard normal sample via Box-Muller (caches the second variate).
  double Gaussian();

  /// Normal(mean, stddev) sample.
  double Gaussian(double mean, double stddev);

  /// Exponential(rate) sample, rate > 0.
  double Exponential(double rate);

  /// Bernoulli(p) sample.
  bool Bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (std::size_t i = values->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(UniformUint64(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> Permutation(std::size_t n);

  /// Writes a random permutation of {0, ..., n-1} into out[0..n), which
  /// must hold n elements. Consumes exactly the same draws as
  /// Permutation(n) — callers with arena-backed scratch get the identical
  /// stream without the vector allocation.
  void PermutationInto(std::size_t n, std::size_t* out);

  /// Derives an independent child generator; successive calls yield
  /// distinct streams. Used to hand isolated randomness to worker threads.
  Rng Fork();

 private:
  unsigned __int128 state_;
  unsigned __int128 inc_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
  std::uint64_t fork_counter_ = 0;
};

}  // namespace gupt

#endif  // GUPT_COMMON_RNG_H_
