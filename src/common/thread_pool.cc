#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace gupt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t count = std::max<std::size_t>(1, num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  assert(task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    assert(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gupt
