#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace gupt {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Worker-id assignment: one process-global counter so ids never collide
/// across pools (the runtime's block workers and the service's admission
/// workers land on distinct trace lanes).
std::atomic<int> g_next_worker_id{0};
thread_local int tls_worker_id = 0;

}  // namespace

int ThreadPool::CurrentWorkerId() { return tls_worker_id; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  queue_depth_gauge_ = registry.GetGauge(
      "gupt_threadpool_queue_depth_count",
      "Tasks waiting in the worker-pool queue (not yet picked up).");
  wait_histogram_ = registry.GetHistogram(
      "gupt_threadpool_task_wait_seconds",
      "Time a task spent queued before a worker picked it up.",
      obs::Histogram::DurationBuckets());
  run_histogram_ = registry.GetHistogram(
      "gupt_threadpool_task_run_seconds",
      "Time a worker spent running a task.",
      obs::Histogram::DurationBuckets());
  tasks_counter_ = registry.GetCounter(
      "gupt_threadpool_tasks_total", "Tasks executed by the worker pool.");

  std::size_t count = std::max<std::size_t>(1, num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  assert(task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    assert(!shutting_down_);
    queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
    ++in_flight_;
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  tls_worker_id = g_next_worker_id.fetch_add(1, std::memory_order_relaxed) + 1;
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    const auto started = std::chrono::steady_clock::now();
    wait_histogram_->Observe(Seconds(started - task.enqueued));
    task.fn();
    run_histogram_->Observe(Seconds(std::chrono::steady_clock::now() - started));
    tasks_counter_->Increment();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gupt
