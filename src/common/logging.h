// Leveled logging for the GUPT runtime.
//
// The runtime logs through a process-global Logger so that benchmarks can
// silence output and tests can capture it. Logging is thread-safe. The
// default sink prefixes every line with an ISO-8601 UTC timestamp, the
// level tag, the emitting thread id, and — while a query is being
// coordinated on the thread (ScopedLogQueryId) — the query id:
//
//   [2026-08-05T14:03:22.117Z WARN tid=140237493479168 qid=42] query ...
//
// The initial severity threshold is kWarning; set the GUPT_LOG_LEVEL
// environment variable (debug|info|warn|error) to override it before the
// process first logs.

#ifndef GUPT_COMMON_LOGGING_H_
#define GUPT_COMMON_LOGGING_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>

namespace gupt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Parses a GUPT_LOG_LEVEL value (case-insensitive: "debug", "info",
/// "warn"/"warning", "error"). Unrecognised text yields nullopt.
std::optional<LogLevel> ParseLogLevel(const std::string& text);

/// RAII thread-local log correlation: while alive, every log line emitted
/// by this thread carries ` qid=<id>` in its prefix. The runtime installs
/// one around each query's pipeline walk, so the stages' log lines can be
/// joined with the query's trace, audit record, and /tracez spans. Scopes
/// nest (the previous id is restored on destruction); an id of 0 means "no
/// query" and is not printed.
class ScopedLogQueryId {
 public:
  explicit ScopedLogQueryId(std::uint64_t query_id);
  ~ScopedLogQueryId();

  ScopedLogQueryId(const ScopedLogQueryId&) = delete;
  ScopedLogQueryId& operator=(const ScopedLogQueryId&) = delete;

  /// The calling thread's current query id (0 = none).
  static std::uint64_t current();

 private:
  std::uint64_t previous_;
};

namespace internal {

/// The default sink's line format, exposed for tests:
/// "[<ISO-8601 UTC ms> <LEVEL> tid=<thread-id>] <message>".
std::string FormatLogLine(LogLevel level, const std::string& message);

}  // namespace internal

/// Process-global log sink with a severity threshold.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Get();

  /// Messages below `level` are dropped.
  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// Replaces the output sink (default writes to stderr). Passing nullptr
  /// restores the default sink.
  void set_sink(Sink sink);

  void Log(LogLevel level, const std::string& message);

 private:
  Logger();

  mutable std::mutex mu_;
  LogLevel min_level_ = LogLevel::kWarning;
  Sink sink_;
};

namespace internal {

/// Builds a message with stream syntax and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GUPT_LOG(level) \
  ::gupt::internal::LogMessage(::gupt::LogLevel::level)

}  // namespace gupt

#endif  // GUPT_COMMON_LOGGING_H_
