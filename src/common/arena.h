// Bump-pointer arena for per-query pipeline scratch.
//
// The query pipeline allocates short-lived buffers on every query —
// permutation scratch in the partition stage, frame encode buffers in the
// chamber pool's lease protocol. Allocating each from the global heap
// costs a malloc/free pair per buffer per query; at service rates that is
// measurable churn and lock traffic. An Arena instead carves allocations
// out of geometrically growing chunks with a bump pointer, and Reset()
// recycles every byte at once: the steady state of a query loop is zero
// heap traffic.
//
// Not thread-safe: one arena belongs to one query on one coordinator
// thread (or to one pool worker slot), mirroring QueryContext ownership.
// Allocations are trivially-destructible storage only — the arena never
// runs destructors.

#ifndef GUPT_COMMON_ARENA_H_
#define GUPT_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace gupt {

class Arena {
 public:
  /// `initial_chunk_bytes` sizes the first chunk; later chunks double up
  /// to kMaxChunkBytes. Nothing is allocated until the first Allocate.
  explicit Arena(std::size_t initial_chunk_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage, aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)). Never returns null; size 0 yields a
  /// valid unique pointer.
  void* Allocate(std::size_t bytes, std::size_t align = alignof(double));

  /// Typed convenience: `count` default-initialized (i.e. uninitialized
  /// for arithmetic types) elements of a trivially-destructible T.
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage never runs destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Recycles every allocation at once: retains the chunks, rewinds the
  /// bump pointers. Previously returned pointers become dangling.
  void Reset();

  /// Releases all chunks back to the heap (Reset plus dealloc).
  void Release();

  /// Bytes handed out since the last Reset (alignment padding included).
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Bytes of chunk capacity currently held (survives Reset).
  std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMaxChunkBytes = 8u << 20;

  Chunk& GrowFor(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // chunks_[active_..] have free space after Reset
  std::size_t next_chunk_bytes_;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace gupt

#endif  // GUPT_COMMON_ARENA_H_
