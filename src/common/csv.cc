#include "common/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gupt {
namespace csv {
namespace {

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  // Trailing comma yields an empty final field that getline drops; restore it
  // so arity errors are reported instead of silently shifting columns.
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

std::string Trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  std::size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

Result<double> ParseDouble(const std::string& field, std::size_t line_no) {
  std::string trimmed = Trim(field);
  if (trimmed.empty()) {
    return Status::ParseError("empty numeric field on line " +
                              std::to_string(line_no));
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) {
    return Status::ParseError("malformed number '" + trimmed + "' on line " +
                              std::to_string(line_no));
  }
  return value;
}

}  // namespace

Result<Table> Parse(const std::string& text, bool has_header) {
  Table table;
  std::stringstream ss(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_pending = has_header;
  while (std::getline(ss, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = SplitFields(trimmed);
    if (header_pending) {
      for (const std::string& f : fields) table.column_names.push_back(Trim(f));
      header_pending = false;
      continue;
    }
    Row row;
    row.reserve(fields.size());
    for (const std::string& f : fields) {
      GUPT_ASSIGN_OR_RETURN(double v, ParseDouble(f, line_no));
      row.push_back(v);
    }
    if (!table.rows.empty() && row.size() != table.rows[0].size()) {
      return Status::ParseError(
          "row on line " + std::to_string(line_no) + " has " +
          std::to_string(row.size()) + " fields, expected " +
          std::to_string(table.rows[0].size()));
    }
    if (!table.column_names.empty() && row.size() != table.column_names.size()) {
      return Status::ParseError("row on line " + std::to_string(line_no) +
                                " does not match header arity");
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<Table> ReadFile(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str(), has_header);
}

std::string Format(const Table& table) {
  std::ostringstream out;
  out.precision(17);
  if (!table.column_names.empty()) {
    for (std::size_t i = 0; i < table.column_names.size(); ++i) {
      if (i) out << ',';
      out << table.column_names[i];
    }
    out << '\n';
  }
  for (const Row& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return out.str();
}

Status WriteFile(const std::string& path, const Table& table) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << Format(table);
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace csv
}  // namespace gupt
