#include "data/synthetic.h"

#include <cmath>

#include "common/rng.h"
#include "common/vec.h"

namespace gupt {
namespace synthetic {
namespace {

// Centres and the labelling hyperplane are derived from a dedicated RNG
// stream so that LifeSciencesTrueCenters() can reproduce them without
// regenerating the rows.
constexpr std::uint64_t kCenterStream = 1;
constexpr std::uint64_t kRowStream = 2;

std::vector<Row> MakeCenters(const LifeSciencesOptions& options) {
  Rng rng(options.seed, kCenterStream);
  std::vector<Row> centers(options.num_clusters,
                           Row(options.num_features, 0.0));
  for (std::size_t j = 0; j < centers.size(); ++j) {
    Row& c = centers[j];
    // Clusters are spread along the first principal component — as PCA
    // output typically is, with PC1 carrying the dominant family split —
    // plus a random offset in the remaining dimensions. The PC1 separation
    // also makes sort-by-first-coordinate a sound canonical ordering for
    // per-block k-means outputs (paper §8).
    c[0] = options.cluster_separation *
           (static_cast<double>(j) -
            0.5 * static_cast<double>(centers.size() - 1));
    if (options.num_features > 1) {
      Row direction(options.num_features - 1);
      for (double& x : direction) x = rng.Gaussian();
      double norm = vec::Norm(direction);
      if (norm == 0.0) norm = 1.0;
      for (std::size_t d = 1; d < c.size(); ++d) {
        c[d] = direction[d - 1] / norm * options.cluster_separation * 0.5;
      }
    }
  }
  return centers;
}

Row MakeLabelWeights(const LifeSciencesOptions& options) {
  Rng rng(options.seed, kCenterStream + 100);
  Row w(options.num_features);
  for (double& x : w) x = rng.Gaussian();
  double norm = vec::Norm(w);
  if (norm == 0.0) norm = 1.0;
  vec::ScaleInPlace(&w, 1.0 / norm);
  return w;
}

}  // namespace

std::vector<Row> LifeSciencesTrueCenters(const LifeSciencesOptions& options) {
  return MakeCenters(options);
}

Result<Dataset> LifeSciences(const LifeSciencesOptions& options) {
  if (options.num_rows == 0 || options.num_features == 0 ||
      options.num_clusters == 0) {
    return Status::InvalidArgument(
        "life-sciences generator needs positive rows/features/clusters");
  }
  if (options.label_noise < 0.0 || options.label_noise > 0.5) {
    return Status::InvalidArgument("label_noise must be in [0, 0.5]");
  }

  std::vector<Row> centers = MakeCenters(options);
  Row w = MakeLabelWeights(options);
  // Bias that balances the two classes: centre the hyperplane on the mean
  // of the cluster centres.
  Row mean_center(options.num_features, 0.0);
  for (const Row& c : centers) vec::AddInPlace(&mean_center, c);
  vec::ScaleInPlace(&mean_center, 1.0 / static_cast<double>(centers.size()));
  double bias = -vec::Dot(w, mean_center);

  Rng rng(options.seed, kRowStream);
  std::vector<Row> rows;
  rows.reserve(options.num_rows);
  for (std::size_t i = 0; i < options.num_rows; ++i) {
    const Row& center = centers[rng.UniformUint64(centers.size())];
    Row row(options.num_features + 1);
    for (std::size_t d = 0; d < options.num_features; ++d) {
      row[d] = center[d] + rng.Gaussian();
    }
    double margin = bias;
    for (std::size_t d = 0; d < options.num_features; ++d) {
      margin += w[d] * row[d];
    }
    bool label = margin > 0.0;
    if (rng.Bernoulli(options.label_noise)) label = !label;
    row[options.num_features] = label ? 1.0 : 0.0;
    rows.push_back(std::move(row));
  }

  std::vector<std::string> names;
  names.reserve(options.num_features + 1);
  for (std::size_t d = 0; d < options.num_features; ++d) {
    names.push_back("pc" + std::to_string(d + 1));
  }
  names.push_back("reactive");
  return Dataset::Create(std::move(rows), std::move(names));
}

Result<Dataset> CensusAges(const CensusAgeOptions& options) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("census generator needs positive rows");
  }
  if (!(options.min_age < options.max_age)) {
    return Status::InvalidArgument("census age bounds are invalid");
  }
  // Mixture of truncated normals approximating the Adult dataset's age
  // histogram: a large young-worker mode, a mid-career mode, and a small
  // retirement tail. Component means/weights tuned so the sample mean lands
  // near the paper's reported 38.58.
  struct Component {
    double weight, mean, stddev;
  };
  const Component mixture[] = {
      {0.48, 30.0, 7.5},
      {0.34, 44.0, 8.0},
      {0.18, 58.0, 10.0},
  };
  Rng rng(options.seed);
  std::vector<double> ages;
  ages.reserve(options.num_rows);
  while (ages.size() < options.num_rows) {
    double u = rng.UniformDouble();
    const Component* comp = &mixture[0];
    double acc = 0.0;
    for (const Component& c : mixture) {
      acc += c.weight;
      if (u < acc) {
        comp = &c;
        break;
      }
    }
    double age = rng.Gaussian(comp->mean, comp->stddev);
    if (age < options.min_age || age > options.max_age) continue;  // truncate
    ages.push_back(std::round(age));
  }
  return Dataset::FromColumn(ages, "age");
}

Result<Dataset> InternetAdAspectRatios(const InternetAdsOptions& options) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("ads generator needs positive rows");
  }
  if (!(options.log_stddev > 0.0) || !(options.max_ratio > 0.0)) {
    return Status::InvalidArgument("ads generator parameters are invalid");
  }
  Rng rng(options.seed);
  std::vector<double> ratios;
  ratios.reserve(options.num_rows);
  while (ratios.size() < options.num_rows) {
    double ratio =
        std::exp(rng.Gaussian(options.log_mean, options.log_stddev));
    if (ratio > options.max_ratio) continue;  // reject the extreme tail
    ratios.push_back(ratio);
  }
  return Dataset::FromColumn(ratios, "aspect_ratio");
}

}  // namespace synthetic
}  // namespace gupt
