// Dataset manager: the data owner's interface to GUPT.
//
// The dataset manager (paper §3.1, Figure 2) "registers instances of the
// available datasets and maintains the available privacy budget". A
// registration couples the raw table with (a) a total privacy budget that
// sequential composition will draw down, (b) optional public per-dimension
// input ranges, and (c) an optional aged slice — the oldest records, whose
// privacy has lapsed under the aging-of-sensitivity model (§3.3) and which
// the runtime may inspect in the clear to tune block sizes and budgets.

#ifndef GUPT_DATA_DATASET_MANAGER_H_
#define GUPT_DATA_DATASET_MANAGER_H_

#include <map>
#include <mutex>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "dp/accountant.h"

namespace gupt {

/// Registration-time options supplied by the data owner.
struct DatasetOptions {
  /// Total privacy budget for all queries against this dataset.
  double total_epsilon = 1.0;
  /// Public per-dimension input ranges. These must come from public
  /// knowledge (e.g. "household income lies in [0, 500000]"), never from
  /// the data itself (paper §3.1).
  std::optional<std::vector<Range>> input_ranges;
  /// Fraction of the dataset (taken from the front, i.e. the oldest
  /// records) treated as fully aged out and hence non-private. 0 disables
  /// the aging model.
  double aged_fraction = 0.0;
};

/// A dataset registered with the manager, with its budget ledger.
class RegisteredDataset {
 public:
  RegisteredDataset(std::string name, Dataset data,
                    std::optional<Dataset> aged, DatasetOptions options);

  const std::string& name() const { return name_; }

  /// The privacy-sensitive rows queries run against.
  const Dataset& data() const { return data_; }

  /// The aged (non-private) slice, or nullptr when the aging model is off.
  const Dataset* aged() const { return aged_ ? &*aged_ : nullptr; }

  /// Owner-declared public input ranges, or nullptr when absent.
  const std::vector<Range>* input_ranges() const {
    return options_.input_ranges ? &*options_.input_ranges : nullptr;
  }

  dp::PrivacyAccountant& accountant() { return accountant_; }
  const dp::PrivacyAccountant& accountant() const { return accountant_; }

 private:
  std::string name_;
  Dataset data_;
  std::optional<Dataset> aged_;
  DatasetOptions options_;
  dp::PrivacyAccountant accountant_;
};

/// One dataset's budget ledger, as published by introspection endpoints.
struct DatasetBudgetSnapshot {
  std::string dataset;
  dp::AccountantSnapshot budget;
};

/// One dataset's ledger totals (no charge history) — the time-series
/// collector samples these once per tick.
struct DatasetBudgetTotals {
  std::string dataset;
  dp::BudgetTotals totals;
};

/// Thread-safe registry of datasets keyed by name. (Queries run
/// concurrently in a hosted service, and registration may race with them;
/// the returned shared_ptrs keep a dataset alive across an Unregister.)
class DatasetManager {
 public:
  /// Registers `data` under `name`. When options.aged_fraction > 0 the
  /// oldest ceil(fraction * n) rows are peeled into the aged slice and the
  /// remainder becomes the private table. Errors on duplicate names,
  /// non-positive budgets, fractions outside [0, 1), or input ranges whose
  /// arity does not match the data.
  Status Register(const std::string& name, Dataset data,
                  DatasetOptions options);

  /// Looks up a registration.
  Result<std::shared_ptr<RegisteredDataset>> Get(const std::string& name) const;

  /// Removes a registration (and with it the remaining budget).
  Status Unregister(const std::string& name);

  /// Names of all registered datasets, sorted.
  std::vector<std::string> ListNames() const;

  /// Per-dataset ledger snapshots, sorted by dataset name. Each snapshot
  /// is internally consistent (one lock acquisition per accountant); the
  /// set of datasets is the registry's state at call time.
  std::vector<DatasetBudgetSnapshot> BudgetSnapshots() const;

  /// Per-dataset ledger totals, sorted by dataset name — BudgetSnapshots
  /// minus the charge-history copy (cheap enough for a 1 Hz sampler).
  std::vector<DatasetBudgetTotals> BudgetTotalsSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<RegisteredDataset>> datasets_;
};

}  // namespace gupt

#endif  // GUPT_DATA_DATASET_MANAGER_H_
