// Durable privacy-budget accounting.
//
// The privacy guarantee of a GUPT deployment is only as strong as its
// ledger: if the service provider restarts and forgets what has been
// spent, the composition bound is silently broken. This module serialises
// every registered dataset's ledger to a line-oriented text format and
// replays it after a restart. Restoring *fails closed*: a ledger entry for
// an unregistered dataset, a total-budget mismatch, or a charge that no
// longer fits is an error, never silently dropped.
//
// Format (one ledger per dataset, '#' comments allowed):
//   gupt-ledger v1
//   dataset <name> total <epsilon>
//   charge <epsilon> <label until end of line>
//   ...

#ifndef GUPT_DATA_BUDGET_STORE_H_
#define GUPT_DATA_BUDGET_STORE_H_

#include <string>

#include "common/status.h"
#include "data/dataset_manager.h"

namespace gupt {

/// Serialises the ledgers of every dataset currently registered.
std::string SerializeBudgets(const DatasetManager& manager);

/// Writes SerializeBudgets() to a file (overwrites).
Status SaveBudgets(const DatasetManager& manager, const std::string& path);

/// Replays a serialised ledger into `manager`. Every dataset named in the
/// text must already be registered with the *same* total budget and a
/// fresh (unspent) ledger; its recorded charges are re-applied in order.
/// Datasets registered in the manager but absent from the text are left
/// untouched.
Status RestoreBudgets(DatasetManager* manager, const std::string& text);

/// Reads a file and replays it via RestoreBudgets.
Status LoadBudgets(DatasetManager* manager, const std::string& path);

}  // namespace gupt

#endif  // GUPT_DATA_BUDGET_STORE_H_
