// Synthetic stand-ins for the paper's evaluation datasets.
//
// The paper evaluates on three datasets we cannot redistribute:
//   * ds1.10 (komarix.org life sciences): 26,733 compounds x 10 principal
//     components, plus a binary reactivity/carcinogenicity label.
//   * UCI Adult census income: 32,561 records; experiments use the age
//     column (true mean 38.5816).
//   * UCI Internet Advertisements: banner-ad aspect ratios (heavy-tailed).
//
// Each generator below is a seeded, documented synthetic equivalent that
// preserves the property the corresponding experiment exercises (cluster
// structure and near-linear separability; a census-like age distribution;
// a skewed positive attribute where mean and median differ). See DESIGN.md
// §2 for the substitution rationale.

#ifndef GUPT_DATA_SYNTHETIC_H_
#define GUPT_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace gupt {
namespace synthetic {

struct LifeSciencesOptions {
  std::size_t num_rows = 26733;
  std::size_t num_features = 10;
  /// Gaussian mixture components standing in for chemical families.
  std::size_t num_clusters = 4;
  /// Distance between cluster centres, in units of within-cluster stddev.
  double cluster_separation = 6.0;
  /// Fraction of labels flipped after the ground-truth linear rule, tuned
  /// so a non-private logistic regression scores ~94% (paper Fig. 3).
  double label_noise = 0.05;
  std::uint64_t seed = 20120520;  // SIGMOD'12 opening day
};

/// Life-sciences-like table: `num_features` feature columns followed by one
/// binary label column (so num_dims == num_features + 1).
Result<Dataset> LifeSciences(const LifeSciencesOptions& options);

struct CensusAgeOptions {
  std::size_t num_rows = 32561;
  /// Clamp bounds for generated ages.
  double min_age = 17.0;
  double max_age = 90.0;
  std::uint64_t seed = 19940101;
};

/// Single-column age table drawn from a mixture of truncated normals whose
/// mean lands near the paper's 38.58.
Result<Dataset> CensusAges(const CensusAgeOptions& options);

struct InternetAdsOptions {
  std::size_t num_rows = 2359;  // UCI ads rows with known geometry
  /// Log-normal parameters for banner aspect ratio (width/height); banners
  /// are wide, so the ratio is mostly > 1 with a long right tail.
  double log_mean = 1.45;
  double log_stddev = 0.65;
  double max_ratio = 60.0;
  std::uint64_t seed = 19980715;
};

/// Single-column aspect-ratio table.
Result<Dataset> InternetAdAspectRatios(const InternetAdsOptions& options);

/// Ground truth accessors used by tests and benchmark harnesses: the
/// cluster centres the life-sciences generator sampled around, in
/// generation order.
std::vector<Row> LifeSciencesTrueCenters(const LifeSciencesOptions& options);

}  // namespace synthetic
}  // namespace gupt

#endif  // GUPT_DATA_SYNTHETIC_H_
