#include "data/dataset.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace gupt {

Result<Dataset> Dataset::Create(std::vector<Row> rows,
                                std::vector<std::string> column_names) {
  if (rows.empty()) {
    return Status::InvalidArgument("dataset must contain at least one row");
  }
  const std::size_t dims = rows[0].size();
  if (dims == 0) {
    return Status::InvalidArgument("dataset rows must have at least one dim");
  }
  for (const Row& r : rows) {
    if (r.size() != dims) {
      return Status::InvalidArgument("dataset rows have mixed dimensions");
    }
  }
  if (!column_names.empty() && column_names.size() != dims) {
    return Status::InvalidArgument("column_names arity does not match rows");
  }
  Dataset ds;
  ds.rows_ = std::move(rows);
  ds.column_names_ = std::move(column_names);
  return ds;
}

Result<Dataset> Dataset::FromColumn(const std::vector<double>& values,
                                    const std::string& name) {
  std::vector<Row> rows;
  rows.reserve(values.size());
  for (double v : values) rows.push_back(Row{v});
  return Create(std::move(rows), {name});
}

Result<Dataset> Dataset::FromCsvFile(const std::string& path,
                                     bool has_header) {
  GUPT_ASSIGN_OR_RETURN(csv::Table table, csv::ReadFile(path, has_header));
  return Create(std::move(table.rows), std::move(table.column_names));
}

Result<std::vector<double>> Dataset::Column(std::size_t dim) const {
  if (dim >= num_dims()) {
    return Status::InvalidArgument("column index out of range");
  }
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[dim]);
  return out;
}

Result<Dataset> Dataset::Subset(const std::vector<std::size_t>& indices) const {
  if (indices.empty()) {
    return Status::InvalidArgument("subset must select at least one row");
  }
  std::vector<Row> rows;
  rows.reserve(indices.size());
  for (std::size_t i : indices) {
    if (i >= rows_.size()) {
      return Status::InvalidArgument("subset index out of range");
    }
    rows.push_back(rows_[i]);
  }
  return Create(std::move(rows), column_names_);
}

Result<std::pair<Dataset, Dataset>> Dataset::SplitAt(std::size_t count) const {
  if (count == 0 || count >= num_rows()) {
    return Status::InvalidArgument(
        "split point must leave both sides non-empty");
  }
  std::vector<Row> head(rows_.begin(),
                        rows_.begin() + static_cast<std::ptrdiff_t>(count));
  std::vector<Row> tail(rows_.begin() + static_cast<std::ptrdiff_t>(count),
                        rows_.end());
  GUPT_ASSIGN_OR_RETURN(Dataset head_ds, Create(std::move(head), column_names_));
  GUPT_ASSIGN_OR_RETURN(Dataset tail_ds, Create(std::move(tail), column_names_));
  return std::make_pair(std::move(head_ds), std::move(tail_ds));
}

std::vector<Range> Dataset::EmpiricalRanges() const {
  std::vector<Range> ranges(num_dims());
  for (std::size_t d = 0; d < num_dims(); ++d) {
    ranges[d].lo = std::numeric_limits<double>::infinity();
    ranges[d].hi = -std::numeric_limits<double>::infinity();
  }
  for (const Row& r : rows_) {
    for (std::size_t d = 0; d < r.size(); ++d) {
      ranges[d].lo = std::min(ranges[d].lo, r[d]);
      ranges[d].hi = std::max(ranges[d].hi, r[d]);
    }
  }
  return ranges;
}

}  // namespace gupt
