#include "data/dataset.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace gupt {

Result<Dataset> Dataset::Create(std::vector<Row> rows,
                                std::vector<std::string> column_names) {
  if (rows.empty()) {
    return Status::InvalidArgument("dataset must contain at least one row");
  }
  const std::size_t dims = rows[0].size();
  if (dims == 0) {
    return Status::InvalidArgument("dataset rows must have at least one dim");
  }
  for (const Row& r : rows) {
    if (r.size() != dims) {
      return Status::InvalidArgument("dataset rows have mixed dimensions");
    }
  }
  if (!column_names.empty() && column_names.size() != dims) {
    return Status::InvalidArgument("column_names arity does not match rows");
  }
  auto store = std::make_shared<ColumnStore>();
  store->num_rows = rows.size();
  store->column_names = std::move(column_names);
  store->columns.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    std::vector<double>& column = store->columns[d];
    column.resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) column[i] = rows[i][d];
  }
  return Dataset(std::move(store), 0, rows.size());
}

Result<Dataset> Dataset::FromColumns(std::vector<std::vector<double>> columns,
                                     std::vector<std::string> column_names) {
  if (columns.empty()) {
    return Status::InvalidArgument("dataset must have at least one column");
  }
  const std::size_t n = columns[0].size();
  if (n == 0) {
    return Status::InvalidArgument("dataset must contain at least one row");
  }
  for (const auto& column : columns) {
    if (column.size() != n) {
      return Status::InvalidArgument("dataset columns have mixed lengths");
    }
  }
  if (!column_names.empty() && column_names.size() != columns.size()) {
    return Status::InvalidArgument("column_names arity does not match columns");
  }
  auto store = std::make_shared<ColumnStore>();
  store->num_rows = n;
  store->columns = std::move(columns);
  store->column_names = std::move(column_names);
  return Dataset(std::move(store), 0, n);
}

Result<Dataset> Dataset::FromColumn(const std::vector<double>& values,
                                    const std::string& name) {
  return FromColumns({values}, {name});
}

Result<Dataset> Dataset::FromCsvFile(const std::string& path,
                                     bool has_header) {
  GUPT_ASSIGN_OR_RETURN(csv::Table table, csv::ReadFile(path, has_header));
  return Create(std::move(table.rows), std::move(table.column_names));
}

Dataset Dataset::FromStore(std::shared_ptr<const ColumnStore> store,
                           std::size_t offset, std::size_t length) {
  return Dataset(std::move(store), offset, length);
}

Row Dataset::row(std::size_t i) const {
  Row out;
  CopyRowInto(i, &out);
  return out;
}

void Dataset::CopyRowInto(std::size_t i, Row* out) const {
  const std::size_t dims = num_dims();
  out->resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    (*out)[d] = store_->columns[d][offset_ + i];
  }
}

std::vector<Row> Dataset::MaterializeRows() const {
  std::vector<Row> rows(length_);
  for (std::size_t i = 0; i < length_; ++i) CopyRowInto(i, &rows[i]);
  return rows;
}

Result<std::vector<double>> Dataset::Column(std::size_t dim) const {
  if (dim >= num_dims()) {
    return Status::InvalidArgument("column index out of range");
  }
  const double* src = col(dim);
  return std::vector<double>(src, src + length_);
}

Result<Dataset> Dataset::Subset(const std::vector<std::size_t>& indices) const {
  if (indices.empty()) {
    return Status::InvalidArgument("subset must select at least one row");
  }
  for (std::size_t i : indices) {
    if (i >= length_) {
      return Status::InvalidArgument("subset index out of range");
    }
  }
  const std::size_t dims = num_dims();
  auto gathered = std::make_shared<ColumnStore>();
  gathered->num_rows = indices.size();
  gathered->column_names = store_->column_names;
  gathered->columns.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const double* src = col(d);
    std::vector<double>& column = gathered->columns[d];
    column.resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      column[i] = src[indices[i]];
    }
  }
  return Dataset(std::move(gathered), 0, indices.size());
}

Result<Dataset> Dataset::Slice(std::size_t offset, std::size_t length) const {
  if (length == 0 || offset + length > length_) {
    return Status::InvalidArgument("slice window out of range");
  }
  return Dataset(store_, offset_ + offset, length);
}

Result<std::pair<Dataset, Dataset>> Dataset::SplitAt(std::size_t count) const {
  if (count == 0 || count >= num_rows()) {
    return Status::InvalidArgument(
        "split point must leave both sides non-empty");
  }
  return std::make_pair(Dataset(store_, offset_, count),
                        Dataset(store_, offset_ + count, length_ - count));
}

std::vector<Range> Dataset::EmpiricalRanges() const {
  const std::size_t dims = num_dims();
  std::vector<Range> ranges(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    ranges[d].lo = std::numeric_limits<double>::infinity();
    ranges[d].hi = -std::numeric_limits<double>::infinity();
    const double* column = col(d);
    for (std::size_t i = 0; i < length_; ++i) {
      ranges[d].lo = std::min(ranges[d].lo, column[i]);
      ranges[d].hi = std::max(ranges[d].hi, column[i]);
    }
  }
  return ranges;
}

}  // namespace gupt
