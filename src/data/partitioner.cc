#include "data/partitioner.h"

#include <algorithm>
#include <cmath>

namespace gupt {

Result<BlockPlan> PartitionDisjoint(std::size_t n, std::size_t num_blocks,
                                    Rng* rng) {
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty dataset");
  }
  if (num_blocks == 0 || num_blocks > n) {
    return Status::InvalidArgument(
        "num_blocks must be in [1, n]; got " + std::to_string(num_blocks) +
        " for n=" + std::to_string(n));
  }
  std::vector<std::size_t> perm = rng->Permutation(n);
  BlockPlan plan;
  plan.gamma = 1;
  plan.blocks.resize(num_blocks);
  // Deal the permutation round-robin so block sizes differ by at most one.
  for (std::size_t i = 0; i < n; ++i) {
    plan.blocks[i % num_blocks].push_back(perm[i]);
  }
  return plan;
}

Result<BlockPlan> PartitionResampled(std::size_t n, std::size_t block_size,
                                     std::size_t gamma, Rng* rng) {
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty dataset");
  }
  if (block_size == 0 || block_size > n) {
    return Status::InvalidArgument(
        "block_size must be in [1, n]; got " + std::to_string(block_size) +
        " for n=" + std::to_string(n));
  }
  if (gamma == 0) {
    return Status::InvalidArgument("resampling factor gamma must be >= 1");
  }
  BlockPlan plan;
  plan.gamma = gamma;
  const std::size_t blocks_per_group = (n + block_size - 1) / block_size;
  plan.blocks.reserve(gamma * blocks_per_group);
  for (std::size_t g = 0; g < gamma; ++g) {
    std::vector<std::size_t> perm = rng->Permutation(n);
    for (std::size_t start = 0; start < n; start += block_size) {
      std::size_t end = std::min(start + block_size, n);
      plan.blocks.emplace_back(perm.begin() + static_cast<std::ptrdiff_t>(start),
                               perm.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return plan;
}

std::size_t DefaultNumBlocks(std::size_t n) {
  if (n == 0) return 1;
  double l = std::pow(static_cast<double>(n), 0.4);
  std::size_t blocks = static_cast<std::size_t>(std::llround(l));
  return std::clamp<std::size_t>(blocks, 1, n);
}

}  // namespace gupt
