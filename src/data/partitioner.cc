#include "data/partitioner.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace gupt {
namespace {

obs::Counter* CopiedBytesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Get().GetCounter(
      "gupt_data_partition_copied_bytes_total",
      "Bytes of row data copied while gathering partition blocks into the "
      "block-shuffled columnar store");
  return counter;
}

// Gathers data's rows at window-local indices gather[0..total) into a
// fresh store, one contiguous pass per column, and charges the copied
// bytes to the partition metric.
std::shared_ptr<const ColumnStore> GatherStore(const Dataset& data,
                                               const std::size_t* gather,
                                               std::size_t total) {
  auto store = std::make_shared<ColumnStore>();
  store->num_rows = total;
  store->column_names = data.column_names();
  const std::size_t dims = data.num_dims();
  store->columns.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const double* src = data.col(d);
    std::vector<double>& out = store->columns[d];
    out.resize(total);
    for (std::size_t j = 0; j < total; ++j) out[j] = src[gather[j]];
  }
  CopiedBytesCounter()->Increment(
      static_cast<double>(total * dims * sizeof(double)));
  return store;
}

}  // namespace

Result<BlockPlan> PartitionDisjoint(std::size_t n, std::size_t num_blocks,
                                    Rng* rng) {
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty dataset");
  }
  if (num_blocks == 0 || num_blocks > n) {
    return Status::InvalidArgument(
        "num_blocks must be in [1, n]; got " + std::to_string(num_blocks) +
        " for n=" + std::to_string(n));
  }
  std::vector<std::size_t> perm = rng->Permutation(n);
  BlockPlan plan;
  plan.gamma = 1;
  plan.blocks.resize(num_blocks);
  // Deal the permutation round-robin so block sizes differ by at most one.
  for (std::size_t i = 0; i < n; ++i) {
    plan.blocks[i % num_blocks].push_back(perm[i]);
  }
  return plan;
}

Result<BlockPlan> PartitionResampled(std::size_t n, std::size_t block_size,
                                     std::size_t gamma, Rng* rng) {
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty dataset");
  }
  if (block_size == 0 || block_size > n) {
    return Status::InvalidArgument(
        "block_size must be in [1, n]; got " + std::to_string(block_size) +
        " for n=" + std::to_string(n));
  }
  if (gamma == 0) {
    return Status::InvalidArgument("resampling factor gamma must be >= 1");
  }
  BlockPlan plan;
  plan.gamma = gamma;
  const std::size_t blocks_per_group = (n + block_size - 1) / block_size;
  plan.blocks.reserve(gamma * blocks_per_group);
  for (std::size_t g = 0; g < gamma; ++g) {
    std::vector<std::size_t> perm = rng->Permutation(n);
    for (std::size_t start = 0; start < n; start += block_size) {
      std::size_t end = std::min(start + block_size, n);
      plan.blocks.emplace_back(perm.begin() + static_cast<std::ptrdiff_t>(start),
                               perm.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return plan;
}

Result<BlockSet> MaterializeBlocks(const Dataset& data, const BlockPlan& plan) {
  if (plan.blocks.empty()) {
    return Status::InvalidArgument("cannot materialize an empty block plan");
  }
  std::size_t total = 0;
  for (const auto& block : plan.blocks) {
    if (block.empty()) {
      return Status::InvalidArgument("block plan contains an empty block");
    }
    for (std::size_t i : block) {
      if (i >= data.num_rows()) {
        return Status::InvalidArgument("block index out of range");
      }
    }
    total += block.size();
  }
  std::vector<std::size_t> gather;
  gather.reserve(total);
  BlockSet set;
  set.gamma = plan.gamma;
  set.slices.reserve(plan.blocks.size());
  for (const auto& block : plan.blocks) {
    set.slices.push_back(BlockSlice{gather.size(), block.size()});
    gather.insert(gather.end(), block.begin(), block.end());
  }
  set.store = GatherStore(data, gather.data(), total);
  return set;
}

Result<BlockSet> PartitionDisjointView(const Dataset& data,
                                       std::size_t num_blocks, Rng* rng,
                                       Arena* scratch) {
  const std::size_t n = data.num_rows();
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty dataset");
  }
  if (num_blocks == 0 || num_blocks > n) {
    return Status::InvalidArgument(
        "num_blocks must be in [1, n]; got " + std::to_string(num_blocks) +
        " for n=" + std::to_string(n));
  }
  Arena local;
  Arena* arena = scratch != nullptr ? scratch : &local;
  std::size_t* perm = arena->AllocateArray<std::size_t>(n);
  rng->PermutationInto(n, perm);

  // Round-robin deal: record i lands in block i % num_blocks at position
  // i / num_blocks — identical block contents and order to
  // PartitionDisjoint's blocks[i % num_blocks].push_back(perm[i]).
  std::size_t* offsets = arena->AllocateArray<std::size_t>(num_blocks);
  const std::size_t base = n / num_blocks;
  const std::size_t rem = n % num_blocks;
  BlockSet set;
  set.gamma = 1;
  set.slices.resize(num_blocks);
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t len = base + (b < rem ? 1 : 0);
    offsets[b] = cursor;
    set.slices[b] = BlockSlice{cursor, len};
    cursor += len;
  }
  std::size_t* gather = arena->AllocateArray<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    gather[offsets[i % num_blocks] + i / num_blocks] = perm[i];
  }
  set.store = GatherStore(data, gather, n);
  return set;
}

Result<BlockSet> PartitionResampledView(const Dataset& data,
                                        std::size_t block_size,
                                        std::size_t gamma, Rng* rng,
                                        Arena* scratch) {
  const std::size_t n = data.num_rows();
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty dataset");
  }
  if (block_size == 0 || block_size > n) {
    return Status::InvalidArgument(
        "block_size must be in [1, n]; got " + std::to_string(block_size) +
        " for n=" + std::to_string(n));
  }
  if (gamma == 0) {
    return Status::InvalidArgument("resampling factor gamma must be >= 1");
  }
  const std::size_t blocks_per_group = (n + block_size - 1) / block_size;
  Arena local;
  Arena* arena = scratch != nullptr ? scratch : &local;
  // Each group's blocks are contiguous slices of that group's permutation,
  // so the gathered row order is simply the concatenated permutations.
  std::size_t* gather = arena->AllocateArray<std::size_t>(gamma * n);
  BlockSet set;
  set.gamma = gamma;
  set.slices.reserve(gamma * blocks_per_group);
  for (std::size_t g = 0; g < gamma; ++g) {
    rng->PermutationInto(n, gather + g * n);
    for (std::size_t start = 0; start < n; start += block_size) {
      const std::size_t end = std::min(start + block_size, n);
      set.slices.push_back(BlockSlice{g * n + start, end - start});
    }
  }
  set.store = GatherStore(data, gather, gamma * n);
  return set;
}

std::size_t DefaultNumBlocks(std::size_t n) {
  if (n == 0) return 1;
  double l = std::pow(static_cast<double>(n), 0.4);
  std::size_t blocks = static_cast<std::size_t>(std::llround(l));
  return std::clamp<std::size_t>(blocks, 1, n);
}

}  // namespace gupt
