// Block partitioning for the sample-and-aggregate framework.
//
// Plain SAF (paper Algorithm 1) randomly partitions the n records into
// disjoint blocks. GUPT's resampling extension (paper §4.2) places each
// record into gamma blocks instead: we realise it as gamma independent
// disjoint partitions ("groups"), which guarantees (a) every record appears
// in exactly gamma blocks and (b) no block holds two copies of one record.
// One record change therefore touches exactly gamma blocks, matching the
// sensitivity argument of Claim 1.
//
// Two representations are provided. BlockPlan is the index-level plan
// (blocks of row indices) that the aging model and tests inspect. BlockSet
// is the execution-layer product: the selected rows gathered ONCE into a
// block-shuffled columnar store, so that every block is a zero-copy
// offset+length view. The fused Partition*View entry points draw exactly
// the same RNG stream as their BlockPlan counterparts and lay rows out in
// exactly the block order ExecuteOnBlocks used to obtain via per-block
// Dataset::Subset copies, which is what keeps query outputs bit-identical
// across the columnar refactor.

#ifndef GUPT_DATA_PARTITIONER_H_
#define GUPT_DATA_PARTITIONER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace gupt {

/// The output of a partitioning step: blocks of row indices plus the
/// multiplicity gamma needed for sensitivity accounting.
struct BlockPlan {
  std::vector<std::vector<std::size_t>> blocks;
  /// How many blocks each record appears in (1 without resampling).
  std::size_t gamma = 1;

  std::size_t num_blocks() const { return blocks.size(); }
};

/// Randomly partitions {0..n-1} into `num_blocks` disjoint blocks whose
/// sizes differ by at most one. Errors when num_blocks is 0 or exceeds n.
Result<BlockPlan> PartitionDisjoint(std::size_t n, std::size_t num_blocks,
                                    Rng* rng);

/// Resampled partition: gamma independent disjoint partitions of {0..n-1}
/// into blocks of size `block_size` (the final block of each group may be
/// smaller when block_size does not divide n). Errors when block_size is 0
/// or exceeds n, or gamma is 0.
Result<BlockPlan> PartitionResampled(std::size_t n, std::size_t block_size,
                                     std::size_t gamma, Rng* rng);

/// One block's window into a BlockSet's gathered store.
struct BlockSlice {
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// A block-shuffled materialization of a dataset: the partitioned rows,
/// gathered once into a single contiguous columnar store in block order.
/// Each block is then an offset+length view — handing a block to a chamber
/// copies nothing (in-process) or ships contiguous column slices (pooled
/// workers). Exactly one gather of the selected rows happens per query,
/// independent of the number of blocks.
struct BlockSet {
  std::shared_ptr<const ColumnStore> store;
  std::vector<BlockSlice> slices;
  /// How many blocks each record appears in (1 without resampling).
  std::size_t gamma = 1;

  std::size_t num_blocks() const { return slices.size(); }
  bool empty() const { return slices.empty(); }

  /// Non-owning zero-copy view of block b; caller keeps *this alive.
  DatasetView view(std::size_t b) const {
    return DatasetView(store.get(), slices[b].offset, slices[b].length);
  }

  /// Owning zero-copy handle to block b (shares the gathered store).
  Dataset block(std::size_t b) const {
    return Dataset::FromStore(store, slices[b].offset, slices[b].length);
  }
};

/// Gathers `plan`'s blocks out of `data` into a BlockSet. Block b's rows
/// have the same values in the same order as data.Subset(plan.blocks[b])
/// would produce. Errors on an empty plan, an empty block, or an
/// out-of-range index. Bytes copied are counted in the
/// gupt_data_partition_copied_bytes_total metric.
Result<BlockSet> MaterializeBlocks(const Dataset& data, const BlockPlan& plan);

/// Fused partition+gather: PartitionDisjoint followed by MaterializeBlocks
/// in one pass, without materializing index vectors. Draws the identical
/// RNG stream as PartitionDisjoint. `scratch`, when given, supplies the
/// permutation/gather scratch (recycled across queries by Reset()).
Result<BlockSet> PartitionDisjointView(const Dataset& data,
                                       std::size_t num_blocks, Rng* rng,
                                       Arena* scratch = nullptr);

/// Fused resampled partition+gather; see PartitionResampled for the block
/// structure and error contract. Draws the identical RNG stream.
Result<BlockSet> PartitionResampledView(const Dataset& data,
                                        std::size_t block_size,
                                        std::size_t gamma, Rng* rng,
                                        Arena* scratch = nullptr);

/// The paper's default block count: l = n^0.4 (Algorithm 1, line 1),
/// i.e. blocks of size ~n^0.6. Always at least 1 and at most n.
std::size_t DefaultNumBlocks(std::size_t n);

}  // namespace gupt

#endif  // GUPT_DATA_PARTITIONER_H_
