// Block partitioning for the sample-and-aggregate framework.
//
// Plain SAF (paper Algorithm 1) randomly partitions the n records into
// disjoint blocks. GUPT's resampling extension (paper §4.2) places each
// record into gamma blocks instead: we realise it as gamma independent
// disjoint partitions ("groups"), which guarantees (a) every record appears
// in exactly gamma blocks and (b) no block holds two copies of one record.
// One record change therefore touches exactly gamma blocks, matching the
// sensitivity argument of Claim 1.

#ifndef GUPT_DATA_PARTITIONER_H_
#define GUPT_DATA_PARTITIONER_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace gupt {

/// The output of a partitioning step: blocks of row indices plus the
/// multiplicity gamma needed for sensitivity accounting.
struct BlockPlan {
  std::vector<std::vector<std::size_t>> blocks;
  /// How many blocks each record appears in (1 without resampling).
  std::size_t gamma = 1;

  std::size_t num_blocks() const { return blocks.size(); }
};

/// Randomly partitions {0..n-1} into `num_blocks` disjoint blocks whose
/// sizes differ by at most one. Errors when num_blocks is 0 or exceeds n.
Result<BlockPlan> PartitionDisjoint(std::size_t n, std::size_t num_blocks,
                                    Rng* rng);

/// Resampled partition: gamma independent disjoint partitions of {0..n-1}
/// into blocks of size `block_size` (the final block of each group may be
/// smaller when block_size does not divide n). Errors when block_size is 0
/// or exceeds n, or gamma is 0.
Result<BlockPlan> PartitionResampled(std::size_t n, std::size_t block_size,
                                     std::size_t gamma, Rng* rng);

/// The paper's default block count: l = n^0.4 (Algorithm 1, line 1),
/// i.e. blocks of size ~n^0.6. Always at least 1 and at most n.
std::size_t DefaultNumBlocks(std::size_t n);

}  // namespace gupt

#endif  // GUPT_DATA_PARTITIONER_H_
