#include "data/dataset_manager.h"

#include <cmath>
#include <utility>

namespace gupt {

RegisteredDataset::RegisteredDataset(std::string name, Dataset data,
                                     std::optional<Dataset> aged,
                                     DatasetOptions options)
    : name_(std::move(name)),
      data_(std::move(data)),
      aged_(std::move(aged)),
      options_(std::move(options)),
      accountant_(options_.total_epsilon) {}

Status DatasetManager::Register(const std::string& name, Dataset data,
                                DatasetOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (datasets_.count(name) != 0) {
    return Status::AlreadyExists("dataset already registered: " + name);
  }
  if (!(options.total_epsilon > 0.0)) {
    return Status::InvalidArgument("total privacy budget must be positive");
  }
  if (options.aged_fraction < 0.0 || options.aged_fraction >= 1.0) {
    return Status::InvalidArgument("aged_fraction must lie in [0, 1)");
  }
  if (options.input_ranges) {
    if (options.input_ranges->size() != data.num_dims()) {
      return Status::InvalidArgument(
          "input_ranges arity does not match dataset dimensions");
    }
    for (const Range& r : *options.input_ranges) {
      if (!(r.lo <= r.hi)) {
        return Status::InvalidArgument("input range with lo > hi");
      }
    }
  }

  std::optional<Dataset> aged;
  if (options.aged_fraction > 0.0) {
    auto count = static_cast<std::size_t>(
        std::ceil(options.aged_fraction * static_cast<double>(data.num_rows())));
    if (count == 0 || count >= data.num_rows()) {
      return Status::InvalidArgument(
          "aged_fraction leaves no private (or no aged) rows");
    }
    GUPT_ASSIGN_OR_RETURN(auto parts, data.SplitAt(count));
    aged = std::move(parts.first);
    data = std::move(parts.second);
  }

  datasets_[name] = std::make_shared<RegisteredDataset>(
      name, std::move(data), std::move(aged), std::move(options));
  return Status::OK();
}

Result<std::shared_ptr<RegisteredDataset>> DatasetManager::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset registered as: " + name);
  }
  return it->second;
}

Status DatasetManager::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (datasets_.erase(name) == 0) {
    return Status::NotFound("no dataset registered as: " + name);
  }
  return Status::OK();
}

std::vector<std::string> DatasetManager::ListNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, unused] : datasets_) names.push_back(name);
  return names;
}

std::vector<DatasetBudgetSnapshot> DatasetManager::BudgetSnapshots() const {
  // Pin the registrations under the registry lock, then snapshot each
  // accountant outside it: Snapshot() takes the accountant's own lock,
  // which concurrent Charge() calls also contend on, and we must not hold
  // mu_ across that. Map order already gives name-sorted output.
  std::vector<std::shared_ptr<RegisteredDataset>> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pinned.reserve(datasets_.size());
    for (const auto& [unused, dataset] : datasets_) pinned.push_back(dataset);
  }
  std::vector<DatasetBudgetSnapshot> snapshots;
  snapshots.reserve(pinned.size());
  for (const auto& dataset : pinned) {
    snapshots.push_back(
        DatasetBudgetSnapshot{dataset->name(), dataset->accountant().Snapshot()});
  }
  return snapshots;
}

std::vector<DatasetBudgetTotals> DatasetManager::BudgetTotalsSnapshot() const {
  // Same two-phase locking discipline as BudgetSnapshots().
  std::vector<std::shared_ptr<RegisteredDataset>> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pinned.reserve(datasets_.size());
    for (const auto& [unused, dataset] : datasets_) pinned.push_back(dataset);
  }
  std::vector<DatasetBudgetTotals> totals;
  totals.reserve(pinned.size());
  for (const auto& dataset : pinned) {
    totals.push_back(
        DatasetBudgetTotals{dataset->name(), dataset->accountant().Totals()});
  }
  return totals;
}

}  // namespace gupt
