#include "data/budget_store.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

constexpr char kMagic[] = "gupt-ledger v1";

// Dataset names and labels are stored verbatim; names must not contain
// whitespace or newlines (enforced on serialise), labels may contain
// spaces but not newlines.
Status ValidateName(const std::string& name) {
  if (name.empty() || name.find_first_of(" \t\n\r") != std::string::npos) {
    return Status::InvalidArgument(
        "dataset name unsuitable for the ledger format: '" + name + "'");
  }
  return Status::OK();
}

std::string SanitizeLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

std::string SerializeBudgets(const DatasetManager& manager) {
  std::ostringstream out;
  out.precision(17);
  out << kMagic << "\n";
  for (const std::string& name : manager.ListNames()) {
    auto ds = manager.Get(name);
    if (!ds.ok()) continue;  // racing unregister; nothing to persist
    if (!ValidateName(name).ok()) continue;
    const dp::PrivacyAccountant& accountant = (*ds)->accountant();
    out << "dataset " << name << " total " << accountant.total_epsilon()
        << "\n";
    for (const dp::BudgetCharge& charge : accountant.charges()) {
      out << "charge " << charge.epsilon << " " << SanitizeLabel(charge.label)
          << "\n";
    }
  }
  return out.str();
}

Status SaveBudgets(const DatasetManager& manager, const std::string& path) {
  // Fault site: a failed persist must never un-charge the in-memory
  // accountant — callers report it but the ledger stays authoritative.
  GUPT_FAILPOINT_STATUS("data.budget_store.save");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open ledger file for writing: " +
                                   path);
  }
  out << SerializeBudgets(manager);
  if (!out) {
    return Status::Internal("ledger write failed: " + path);
  }
  return Status::OK();
}

Status RestoreBudgets(DatasetManager* manager, const std::string& text) {
  if (manager == nullptr) {
    return Status::InvalidArgument("manager is null");
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::ParseError("ledger missing magic header '" +
                              std::string(kMagic) + "'");
  }

  std::shared_ptr<RegisteredDataset> current;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "dataset") {
      std::string name, total_kw;
      double total = 0.0;
      fields >> name >> total_kw >> total;
      if (fields.fail() || total_kw != "total") {
        return Status::ParseError("malformed dataset line " +
                                  std::to_string(line_no));
      }
      GUPT_ASSIGN_OR_RETURN(current, manager->Get(name));
      const dp::PrivacyAccountant& accountant = current->accountant();
      if (std::fabs(accountant.total_epsilon() - total) > 1e-12) {
        return Status::InvalidArgument(
            "ledger total " + std::to_string(total) + " for dataset '" +
            name + "' does not match registered total " +
            std::to_string(accountant.total_epsilon()));
      }
      if (accountant.num_charges() != 0) {
        return Status::InvalidArgument(
            "dataset '" + name +
            "' already has charges; restore requires a fresh ledger");
      }
    } else if (keyword == "charge") {
      if (current == nullptr) {
        return Status::ParseError("charge before any dataset at line " +
                                  std::to_string(line_no));
      }
      double epsilon = 0.0;
      fields >> epsilon;
      if (fields.fail()) {
        return Status::ParseError("malformed charge line " +
                                  std::to_string(line_no));
      }
      std::string label;
      std::getline(fields, label);
      if (!label.empty() && label[0] == ' ') label.erase(0, 1);
      GUPT_RETURN_IF_ERROR(current->accountant().Charge(
          epsilon, label.empty() ? "restored" : label));
    } else {
      return Status::ParseError("unknown ledger keyword '" + keyword +
                                "' at line " + std::to_string(line_no));
    }
  }
  return Status::OK();
}

Status LoadBudgets(DatasetManager* manager, const std::string& path) {
  GUPT_FAILPOINT_STATUS("data.budget_store.load");
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open ledger file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return RestoreBudgets(manager, buffer.str());
}

}  // namespace gupt
