// In-memory multi-dimensional dataset.
//
// GUPT's data model (paper §3.1) is a table of real-valued vectors with
// optional per-dimension input ranges supplied by the data owner. Datasets
// are immutable once built; the runtime hands *copies of row subsets* to
// untrusted programs so a malicious program can never mutate shared data.

#ifndef GUPT_DATA_DATASET_H_
#define GUPT_DATA_DATASET_H_

#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "common/vec.h"

namespace gupt {

/// Closed interval bound for one dimension of the input data.
struct Range {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return x >= lo && x <= hi; }
  double width() const { return hi - lo; }
};

/// Immutable rectangular table of doubles.
class Dataset {
 public:
  Dataset() = default;

  /// Builds a dataset from rows; all rows must share one dimension and the
  /// dataset must be non-empty. `column_names`, when given, must match the
  /// dimension.
  static Result<Dataset> Create(std::vector<Row> rows,
                                std::vector<std::string> column_names = {});

  /// Builds a single-column dataset.
  static Result<Dataset> FromColumn(const std::vector<double>& values,
                                    const std::string& name = "value");

  /// Loads a numeric CSV file.
  static Result<Dataset> FromCsvFile(const std::string& path, bool has_header);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_dims() const { return rows_.empty() ? 0 : rows_[0].size(); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(std::size_t i) const { return rows_[i]; }
  const std::vector<std::string>& column_names() const { return column_names_; }

  /// Copy of one column.
  Result<std::vector<double>> Column(std::size_t dim) const;

  /// New dataset holding copies of the rows at `indices` (in order).
  /// Out-of-range indices are an error.
  Result<Dataset> Subset(const std::vector<std::size_t>& indices) const;

  /// Splits into ([0, count), [count, n)) — used by the aging model to peel
  /// off the oldest records. count must be <= num_rows().
  Result<std::pair<Dataset, Dataset>> SplitAt(std::size_t count) const;

  /// Exact per-dimension [min, max] of the data. Note: these bounds are
  /// *data-dependent* and therefore sensitive; the runtime only uses them
  /// where the paper's GUPT-tight mode assumes the analyst already knows a
  /// tight public range.
  std::vector<Range> EmpiricalRanges() const;

 private:
  std::vector<Row> rows_;
  std::vector<std::string> column_names_;
};

}  // namespace gupt

#endif  // GUPT_DATA_DATASET_H_
