// In-memory multi-dimensional dataset, stored columnar.
//
// GUPT's data model (paper §3.1) is a table of real-valued vectors with
// optional per-dimension input ranges supplied by the data owner. Storage
// is an immutable, shared *column store*: one contiguous double array per
// dimension, owned by a refcounted ColumnStore. A Dataset is a cheap
// {store, offset, length} handle over such a store, so contiguous slicing
// (SplitAt, Slice, per-block views after a block-shuffled materialization)
// is zero-copy and O(num_dims), while arbitrary-index Subset gathers into
// a fresh store. Untrusted programs still can never mutate shared data:
// every accessor is const and the arrays live behind a shared_ptr<const>.
//
// Aliasing rules (see docs/architecture.md "Memory layout"):
//   * A ColumnStore is immutable from the moment a Dataset is built over
//     it; views never invalidate.
//   * Dataset and DatasetView handles keep the whole store alive; a view
//     over 1% of the rows pins 100% of the store (gather a Subset when
//     that matters).
//   * col(d) pointers are valid exactly as long as some handle to the
//     store exists.

#ifndef GUPT_DATA_DATASET_H_
#define GUPT_DATA_DATASET_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "common/vec.h"

namespace gupt {

/// Closed interval bound for one dimension of the input data.
struct Range {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return x >= lo && x <= hi; }
  double width() const { return hi - lo; }
};

/// Immutable contiguous per-dimension storage shared by every view over
/// it. Never mutated after construction (the columns' sizes and values are
/// fixed); always held behind shared_ptr<const ColumnStore>.
struct ColumnStore {
  /// columns[d] has num_rows values; all columns have equal length.
  std::vector<std::vector<double>> columns;
  std::vector<std::string> column_names;
  std::size_t num_rows = 0;

  std::size_t num_dims() const { return columns.size(); }
};

/// A non-owning offset+length window over a ColumnStore: the handle the
/// partitioner and execution layers pass around for zero-copy blocks. The
/// underlying store must be kept alive by the owner of the blocks (a
/// Dataset or a BlockSet); a view itself is two pointers and two sizes.
class DatasetView {
 public:
  DatasetView() = default;
  DatasetView(const ColumnStore* store, std::size_t offset, std::size_t length)
      : store_(store), offset_(offset), length_(length) {}

  std::size_t num_rows() const { return length_; }
  std::size_t num_dims() const {
    return store_ == nullptr ? 0 : store_->num_dims();
  }
  std::size_t offset() const { return offset_; }
  const ColumnStore* store() const { return store_; }

  /// Contiguous column slice of length num_rows(); dim must be in range.
  const double* col(std::size_t dim) const {
    return store_->columns[dim].data() + offset_;
  }

  /// Element access (row-local index within this view).
  double at(std::size_t row, std::size_t dim) const {
    return store_->columns[dim][offset_ + row];
  }

  const std::vector<std::string>& column_names() const {
    return store_->column_names;
  }

 private:
  const ColumnStore* store_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t length_ = 0;
};

/// Immutable rectangular table of doubles: a shared-ownership window over
/// a ColumnStore. Copying a Dataset copies three words, never the data.
class Dataset {
 public:
  Dataset() = default;

  /// Builds a dataset from rows (transposed into columns); all rows must
  /// share one dimension and the dataset must be non-empty. `column_names`,
  /// when given, must match the dimension.
  static Result<Dataset> Create(std::vector<Row> rows,
                                std::vector<std::string> column_names = {});

  /// Builds a dataset directly from columnar data (no transpose). All
  /// columns must be non-empty and equally sized.
  static Result<Dataset> FromColumns(std::vector<std::vector<double>> columns,
                                     std::vector<std::string> column_names = {});

  /// Builds a single-column dataset.
  static Result<Dataset> FromColumn(const std::vector<double>& values,
                                    const std::string& name = "value");

  /// Loads a numeric CSV file.
  static Result<Dataset> FromCsvFile(const std::string& path, bool has_header);

  /// Wraps an existing store (offset+length window). Internal-ish: used by
  /// the partitioner's block materialization.
  static Dataset FromStore(std::shared_ptr<const ColumnStore> store,
                           std::size_t offset, std::size_t length);

  std::size_t num_rows() const { return length_; }
  std::size_t num_dims() const {
    return store_ == nullptr ? 0 : store_->num_dims();
  }
  const std::vector<std::string>& column_names() const {
    static const std::vector<std::string> kEmpty;
    return store_ == nullptr ? kEmpty : store_->column_names;
  }

  /// Zero-copy contiguous column slice of length num_rows(). `dim` must be
  /// in range (use Column for checked access).
  const double* col(std::size_t dim) const {
    return store_->columns[dim].data() + offset_;
  }

  /// Element access without materializing a row.
  double at(std::size_t row, std::size_t dim) const {
    return store_->columns[dim][offset_ + row];
  }

  /// Materialized copy of row `i` (gathers across columns). Prefer
  /// col()/at() on hot paths.
  Row row(std::size_t i) const;

  /// Gathers row `i` into `*out` (resized to num_dims) without allocating
  /// when out already has the right capacity.
  void CopyRowInto(std::size_t i, Row* out) const;

  /// Materialized row-major copy of the whole table (tests, exports).
  std::vector<Row> MaterializeRows() const;

  /// Non-owning view of this dataset's window (caller keeps the Dataset
  /// alive while the view is in use).
  DatasetView view() const { return DatasetView(store_.get(), offset_, length_); }

  /// The shared store handle (for aliasing checks and block owners).
  const std::shared_ptr<const ColumnStore>& store() const { return store_; }
  std::size_t offset() const { return offset_; }

  /// Checked copy of one column.
  Result<std::vector<double>> Column(std::size_t dim) const;

  /// New dataset holding copies of the rows at `indices` (in order),
  /// gathered into a fresh store. Out-of-range indices are an error.
  Result<Dataset> Subset(const std::vector<std::size_t>& indices) const;

  /// Zero-copy window [offset, offset+length) sharing this store.
  /// Errors when the window is empty or exceeds num_rows().
  Result<Dataset> Slice(std::size_t offset, std::size_t length) const;

  /// Splits into ([0, count), [count, n)) — used by the aging model to peel
  /// off the oldest records. Both halves share this store (zero-copy).
  /// count must leave both sides non-empty.
  Result<std::pair<Dataset, Dataset>> SplitAt(std::size_t count) const;

  /// Exact per-dimension [min, max] of the data. Note: these bounds are
  /// *data-dependent* and therefore sensitive; the runtime only uses them
  /// where the paper's GUPT-tight mode assumes the analyst already knows a
  /// tight public range.
  std::vector<Range> EmpiricalRanges() const;

 private:
  Dataset(std::shared_ptr<const ColumnStore> store, std::size_t offset,
          std::size_t length)
      : store_(std::move(store)), offset_(offset), length_(length) {}

  std::shared_ptr<const ColumnStore> store_;
  std::size_t offset_ = 0;
  std::size_t length_ = 0;
};

}  // namespace gupt

#endif  // GUPT_DATA_DATASET_H_
